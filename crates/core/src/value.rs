//! Complex objects: atoms, tuples, and bags.
//!
//! A value is an object of some [`Type`]: an atomic
//! constant, a tuple of values, or a bag of values. Values carry a total
//! order — the lexicographic order the paper uses in the PSPACE encoding of
//! Theorem 5.1 ("From an order on the atomic constants, we can derive a
//! lexicographic order on tuples and then on sets and bags of tuples") —
//! which also makes them usable as `BTreeMap` keys inside [`Bag`].

use std::fmt;
use std::sync::Arc;

use crate::bag::Bag;
use crate::natural::Natural;
use crate::types::Type;

/// An atomic constant from the infinite domain of the atomic type `U`.
///
/// The paper's domain is an abstract infinite set of constants; we provide
/// integers and interned strings. Ordering places all integers before all
/// strings, giving the total order on the domain that Section 4's
/// parity-with-order expression and Section 5's encodings assume.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Atom {
    /// An integer constant.
    Int(i64),
    /// A symbolic constant.
    Str(Arc<str>),
}

impl Atom {
    /// A symbolic constant from a string slice.
    pub fn sym(s: &str) -> Atom {
        Atom::Str(Arc::from(s))
    }
}

impl From<i64> for Atom {
    fn from(v: i64) -> Self {
        Atom::Int(v)
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Self {
        Atom::sym(s)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Int(v) => write!(f, "{v}"),
            Atom::Str(s) => write!(f, "{s}"),
        }
    }
}

/// A complex object: an atom, a tuple of objects, or a bag of objects.
///
/// Both container variants are cheap to clone: tuples share their field
/// slice behind an [`Arc`], and [`Bag`] is internally copy-on-write. The
/// hand-written `PartialEq`/`Ord` add pointer-equality fast paths for
/// shared containers while keeping exactly the derived (structural,
/// variant-ordered) semantics — the total order of Theorem 5.1's encoding.
// The manual `PartialEq` below is the structural equality the derive would
// produce, plus an `Arc` pointer fast path — so the derived `Hash` remains
// consistent with it.
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Eq, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// An atomic constant.
    Atom(Atom),
    /// A tuple `[o₁, …, oₖ]` (the paper's tupling constructor `τ`).
    Tuple(Arc<[Value]>),
    /// A bag `⟦…⟧`.
    Bag(Bag),
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Atom(a), Value::Atom(b)) => a == b,
            (Value::Tuple(a), Value::Tuple(b)) => Arc::ptr_eq(a, b) || a == b,
            (Value::Bag(a), Value::Bag(b)) => a == b,
            _ => false,
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Atom(a), Value::Atom(b)) => a.cmp(b),
            (Value::Tuple(a), Value::Tuple(b)) => {
                if Arc::ptr_eq(a, b) {
                    Ordering::Equal
                } else {
                    a.cmp(b)
                }
            }
            (Value::Bag(a), Value::Bag(b)) => a.cmp(b),
            // Variant order: atoms < tuples < bags, as derived.
            (Value::Atom(_), _) => Ordering::Less,
            (_, Value::Atom(_)) => Ordering::Greater,
            (Value::Tuple(_), Value::Bag(_)) => Ordering::Less,
            (Value::Bag(_), Value::Tuple(_)) => Ordering::Greater,
        }
    }
}

impl Value {
    /// An integer atom.
    pub fn int(v: i64) -> Value {
        Value::Atom(Atom::Int(v))
    }

    /// A symbolic atom.
    pub fn sym(s: &str) -> Value {
        Value::Atom(Atom::sym(s))
    }

    /// A tuple value.
    pub fn tuple(fields: impl IntoIterator<Item = Value>) -> Value {
        Value::Tuple(fields.into_iter().collect())
    }

    /// The concatenated tuple `[l₁, …, lₘ, r₁, …, rₙ]` — the element shape
    /// the Cartesian product produces, shared by the materializing and the
    /// fused (hash-join / streamed-pair) product paths. The ubiquitous
    /// small arities build their `Arc` slice from a fixed array — one
    /// allocation instead of the `Vec`-then-`Arc` two.
    pub fn concat_tuples(left: &[Value], right: &[Value]) -> Value {
        match (left, right) {
            ([l], [r]) => Value::Tuple(Arc::from([l.clone(), r.clone()])),
            ([l0, l1], [r0, r1]) => {
                Value::Tuple(Arc::from([l0.clone(), l1.clone(), r0.clone(), r1.clone()]))
            }
            _ => {
                let mut fields = Vec::with_capacity(left.len() + right.len());
                fields.extend_from_slice(left);
                fields.extend_from_slice(right);
                Value::Tuple(fields.into())
            }
        }
    }

    /// A bag value from an iterator of elements (each with multiplicity 1).
    pub fn bag(elems: impl IntoIterator<Item = Value>) -> Value {
        Value::Bag(Bag::from_values(elems))
    }

    /// The empty bag.
    pub fn empty_bag() -> Value {
        Value::Bag(Bag::new())
    }

    /// Borrow as a bag, if this is one.
    pub fn as_bag(&self) -> Option<&Bag> {
        match self {
            Value::Bag(b) => Some(b),
            _ => None,
        }
    }

    /// Consume into a bag, if this is one.
    pub fn into_bag(self) -> Option<Bag> {
        match self {
            Value::Bag(b) => Some(b),
            _ => None,
        }
    }

    /// Borrow as a tuple, if this is one.
    pub fn as_tuple(&self) -> Option<&[Value]> {
        match self {
            Value::Tuple(fields) => Some(fields),
            _ => None,
        }
    }

    /// Borrow as an atom, if this is one.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Value::Atom(a) => Some(a),
            _ => None,
        }
    }

    /// Infer the type of this value. Homogeneity of bags is checked; an
    /// empty bag infers `⟦?⟧` ([`Type::Unknown`] element). Returns `None`
    /// for heterogeneous bags, which are not objects of any type.
    pub fn infer_type(&self) -> Option<Type> {
        match self {
            Value::Atom(_) => Some(Type::Atom),
            Value::Tuple(fields) => {
                let tys = fields
                    .iter()
                    .map(Value::infer_type)
                    .collect::<Option<Vec<_>>>()?;
                Some(Type::Tuple(tys))
            }
            Value::Bag(bag) => {
                let mut elem = Type::Unknown;
                for (value, _) in bag.iter() {
                    let ty = value.infer_type()?;
                    elem = elem.unify(&ty)?;
                }
                Some(Type::bag(elem))
            }
        }
    }

    /// `true` if this value is an object of the given type (`Unknown`
    /// matches anything; empty bags match every bag type).
    pub fn has_type(&self, ty: &Type) -> bool {
        match (self, ty) {
            (_, Type::Unknown) => true,
            (Value::Atom(_), Type::Atom) => true,
            (Value::Tuple(fields), Type::Tuple(tys)) => {
                fields.len() == tys.len() && fields.iter().zip(tys).all(|(v, t)| v.has_type(t))
            }
            (Value::Bag(bag), Type::Bag(elem)) => bag.iter().all(|(v, _)| v.has_type(elem)),
            _ => false,
        }
    }

    /// The bag nesting of the value: maximal number of bag nodes on a path
    /// from the root to a leaf of the object.
    pub fn bag_nesting(&self) -> usize {
        match self {
            Value::Atom(_) => 0,
            Value::Tuple(fields) => fields.iter().map(Value::bag_nesting).max().unwrap_or(0),
            Value::Bag(bag) => 1 + bag.iter().map(|(v, _)| v.bag_nesting()).max().unwrap_or(0),
        }
    }

    /// Size of the **standard encoding** of the value (Section 2): each
    /// object is repeated in the encoding as many times as it appears in a
    /// bag — duplicates are *not* compressed, matching the paper's
    /// complexity measure ("duplicates are explicitly stored"). Atoms have
    /// size 1; tuples and bags add 1 for their constructor.
    pub fn encoded_size(&self) -> Natural {
        match self {
            Value::Atom(_) => Natural::one(),
            Value::Tuple(fields) => {
                let mut total = Natural::one();
                for field in fields.iter() {
                    total += &field.encoded_size();
                }
                total
            }
            Value::Bag(bag) => {
                let mut total = Natural::one();
                for (value, mult) in bag.iter() {
                    total += &(&value.encoded_size() * mult);
                }
                total
            }
        }
    }

    /// All distinct atomic constants occurring in the value, in order.
    pub fn atoms(&self) -> std::collections::BTreeSet<Atom> {
        let mut out = std::collections::BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    pub(crate) fn collect_atoms(&self, out: &mut std::collections::BTreeSet<Atom>) {
        match self {
            Value::Atom(a) => {
                out.insert(a.clone());
            }
            Value::Tuple(fields) => {
                for field in fields.iter() {
                    field.collect_atoms(out);
                }
            }
            Value::Bag(bag) => {
                for (value, _) in bag.iter() {
                    value.collect_atoms(out);
                }
            }
        }
    }

    /// Apply an atom renaming `h` componentwise (the isomorphisms of
    /// Section 2 extend bijections on the domain to complex objects).
    pub fn rename_atoms(&self, h: &impl Fn(&Atom) -> Atom) -> Value {
        match self {
            Value::Atom(a) => Value::Atom(h(a)),
            Value::Tuple(fields) => {
                Value::Tuple(fields.iter().map(|f| f.rename_atoms(h)).collect())
            }
            Value::Bag(bag) => {
                let mut out = Bag::new();
                for (value, mult) in bag.iter() {
                    out.insert_with_multiplicity(value.rename_atoms(h), mult.clone());
                }
                Value::Bag(out)
            }
        }
    }
}

impl From<Atom> for Value {
    fn from(a: Atom) -> Self {
        Value::Atom(a)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

impl From<Bag> for Value {
    fn from(b: Bag) -> Self {
        Value::Bag(b)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Atom(a) => write!(f, "{a}"),
            Value::Tuple(fields) => {
                f.write_str("[")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{field}")?;
                }
                f.write_str("]")
            }
            Value::Bag(bag) => write!(f, "{bag}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_type_of_flat_relation() {
        let b = Value::bag([
            Value::tuple([Value::sym("a"), Value::sym("b")]),
            Value::tuple([Value::sym("b"), Value::sym("a")]),
        ]);
        assert_eq!(b.infer_type(), Some(Type::relation(2)));
        assert!(b.has_type(&Type::relation(2)));
        assert!(!b.has_type(&Type::relation(3)));
    }

    #[test]
    fn empty_bag_matches_any_bag_type() {
        let e = Value::empty_bag();
        assert_eq!(e.infer_type(), Some(Type::bag(Type::Unknown)));
        assert!(e.has_type(&Type::relation(5)));
        assert!(e.has_type(&Type::bag(Type::bag(Type::Atom))));
        assert!(!e.has_type(&Type::Atom));
    }

    #[test]
    fn heterogeneous_bag_has_no_type() {
        let mut bag = Bag::new();
        bag.insert(Value::sym("a"));
        bag.insert(Value::tuple([Value::sym("a")]));
        assert_eq!(Value::Bag(bag).infer_type(), None);
    }

    #[test]
    fn bag_nesting_of_values() {
        assert_eq!(Value::sym("a").bag_nesting(), 0);
        let flat = Value::bag([Value::sym("a")]);
        assert_eq!(flat.bag_nesting(), 1);
        let nested = Value::bag([flat]);
        assert_eq!(nested.bag_nesting(), 2);
        let tup = Value::tuple([Value::sym("x"), nested]);
        assert_eq!(tup.bag_nesting(), 2);
    }

    #[test]
    fn encoded_size_expands_duplicates() {
        // ⟦a, a, a⟧: 1 (bag) + 3·1 (three copies of a) = 4.
        let mut bag = Bag::new();
        bag.insert_with_multiplicity(Value::sym("a"), Natural::from(3u64));
        assert_eq!(Value::Bag(bag).encoded_size(), Natural::from(4u64));
        // The counted representation would be O(log n); the standard
        // encoding is linear in the number of duplicates.
        let mut big = Bag::new();
        big.insert_with_multiplicity(Value::sym("a"), Natural::from(1000u64));
        assert_eq!(Value::Bag(big).encoded_size(), Natural::from(1001u64));
    }

    #[test]
    fn ordering_is_total_and_structural() {
        let a = Value::sym("a");
        let b = Value::sym("b");
        assert!(a < b);
        assert!(Value::int(5) < a); // ints sort before symbols
        let t1 = Value::tuple([a.clone(), b.clone()]);
        let t2 = Value::tuple([b, a]);
        assert!(t1 < t2);
    }

    #[test]
    fn rename_atoms_is_deep() {
        let v = Value::bag([Value::tuple([Value::sym("a"), Value::sym("b")])]);
        let renamed = v.rename_atoms(&|a| {
            if *a == Atom::sym("a") {
                Atom::sym("z")
            } else {
                a.clone()
            }
        });
        assert_eq!(
            renamed,
            Value::bag([Value::tuple([Value::sym("z"), Value::sym("b")])])
        );
    }

    #[test]
    fn atoms_collects_distinct_constants() {
        let v = Value::bag([
            Value::tuple([Value::sym("a"), Value::sym("b")]),
            Value::tuple([Value::sym("a"), Value::sym("c")]),
        ]);
        let atoms = v.atoms();
        assert_eq!(atoms.len(), 3);
        assert!(atoms.contains(&Atom::sym("a")));
    }

    #[test]
    fn display_shapes() {
        let v = Value::tuple([Value::int(1), Value::bag([Value::sym("a")])]);
        assert_eq!(v.to_string(), "[1, {{a}}]");
    }
}
