//! Bags with exact multiplicities and the primitive operations of Section 3.
//!
//! A bag is a finite multiset: a map from distinct elements to positive
//! multiplicities. An element *n-belongs* to a bag if it has exactly `n`
//! occurrences. The operations here are the data-level semantics of the
//! BALG operators; the expression AST in [`crate::expr`] composes them.
//!
//! The counted `BTreeMap` representation is the optimization the paper's
//! Section 3 anticipates ("representing each object in association with the
//! number of its occurrences"); the paper's complexity measure nevertheless
//! charges for the expanded standard encoding, which
//! [`Value::encoded_size`](crate::value::Value::encoded_size) computes.
//!
//! The element map lives behind an [`Arc`] with copy-on-write mutation, so
//! cloning a bag — which the evaluator does for every variable lookup,
//! every λ binding, and every nested-bag value — is a reference-count bump
//! rather than a deep copy. Shared clones also unlock pointer-equality
//! fast paths in `==` and `cmp`, which the `BTreeMap` probes on nested
//! bags hit constantly.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use crate::natural::Natural;
use crate::value::Value;

/// An error from a primitive bag operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BagError {
    /// Cartesian product or projection applied to a non-tuple element.
    NotATuple(Value),
    /// Bag-destroy `δ` applied to a bag whose elements are not bags.
    NotABag(Value),
    /// Attribute projection `αᵢ` with an out-of-range index.
    BadArity {
        /// Requested 1-based attribute index.
        index: usize,
        /// Actual tuple arity.
        arity: usize,
    },
    /// Powerset/powerbag output would exceed the caller's element budget.
    /// `predicted` is the exact number of distinct subbags, `Π(mᵢ+1)`.
    TooLarge {
        /// Exact predicted number of distinct output elements.
        predicted: Natural,
        /// The caller-imposed budget.
        limit: u64,
    },
}

impl fmt::Display for BagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BagError::NotATuple(v) => write!(f, "expected a tuple element, got {v}"),
            BagError::NotABag(v) => write!(f, "expected a bag element, got {v}"),
            BagError::BadArity { index, arity } => {
                write!(f, "attribute α{index} out of range for arity {arity}")
            }
            BagError::TooLarge { predicted, limit } => write!(
                f,
                "powerset would produce {predicted} subbags, over the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for BagError {}

/// A homogeneous bag of [`Value`]s with exact [`Natural`] multiplicities.
///
/// Invariant: no element is stored with multiplicity zero, so equality and
/// ordering of bags are canonical. Iteration is in the total [`Value`]
/// order, which the PSPACE encoding of Theorem 5.1 relies on.
///
/// Cloning is `O(1)` (shared `Arc`); the first mutation of a shared bag
/// copies the element map (copy-on-write).
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bag {
    elems: Arc<BTreeMap<Value, Natural>>,
}

/// All empty bags share one allocation, so `Bag::new()` is free and
/// comparisons against the empty bag hit the pointer-equality fast path.
fn shared_empty() -> Arc<BTreeMap<Value, Natural>> {
    static EMPTY: OnceLock<Arc<BTreeMap<Value, Natural>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(BTreeMap::new())).clone()
}

impl Default for Bag {
    fn default() -> Bag {
        Bag::new()
    }
}

impl PartialEq for Bag {
    fn eq(&self, other: &Bag) -> bool {
        Arc::ptr_eq(&self.elems, &other.elems) || self.elems == other.elems
    }
}

impl Eq for Bag {}

impl PartialOrd for Bag {
    fn partial_cmp(&self, other: &Bag) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bag {
    fn cmp(&self, other: &Bag) -> Ordering {
        if Arc::ptr_eq(&self.elems, &other.elems) {
            return Ordering::Equal;
        }
        self.elems.cmp(&other.elems)
    }
}

impl Hash for Bag {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (*self.elems).hash(state);
    }
}

impl Bag {
    /// The empty bag `⟦⟧`.
    pub fn new() -> Bag {
        Bag {
            elems: shared_empty(),
        }
    }

    /// Copy-on-write access to the element map.
    fn elems_mut(&mut self) -> &mut BTreeMap<Value, Natural> {
        Arc::make_mut(&mut self.elems)
    }

    /// The bagging constructor `β(o) = ⟦o⟧`: a bag where `o` 1-belongs.
    pub fn singleton(value: Value) -> Bag {
        let mut bag = Bag::new();
        bag.insert(value);
        bag
    }

    /// A bag containing `count` occurrences of `value` — the paper's `Bᵗᵢ`
    /// notation and its integer encoding (an integer `i` is the bag with
    /// `i` occurrences of a fixed constant).
    pub fn repeated(value: Value, count: impl Into<Natural>) -> Bag {
        let mut bag = Bag::new();
        bag.insert_with_multiplicity(value, count.into());
        bag
    }

    /// Build from values, each contributing one occurrence.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Bag {
        let mut bag = Bag::new();
        for value in values {
            bag.insert(value);
        }
        bag
    }

    /// Build from `(value, multiplicity)` pairs; zero multiplicities are
    /// dropped, duplicate keys accumulate.
    pub fn from_counted(pairs: impl IntoIterator<Item = (Value, Natural)>) -> Bag {
        let mut bag = Bag::new();
        for (value, mult) in pairs {
            bag.insert_with_multiplicity(value, mult);
        }
        bag
    }

    /// Add one occurrence of `value`.
    pub fn insert(&mut self, value: Value) {
        self.insert_with_multiplicity(value, Natural::one());
    }

    /// Add `mult` occurrences of `value` (no-op when `mult` is zero).
    pub fn insert_with_multiplicity(&mut self, value: Value, mult: Natural) {
        if mult.is_zero() {
            return;
        }
        *self.elems_mut().entry(value).or_default() += &mult;
    }

    /// The number of occurrences of `o` — the `n` such that `o` n-belongs.
    pub fn multiplicity(&self, value: &Value) -> Natural {
        self.elems.get(value).cloned().unwrap_or_default()
    }

    /// `true` iff `o` p-belongs for some `p > 0`.
    pub fn contains(&self, value: &Value) -> bool {
        self.elems.contains_key(value)
    }

    /// Total number of occurrences, `Σ mᵢ` (the paper's bag size up to
    /// encoding constants).
    pub fn cardinality(&self) -> Natural {
        self.elems.values().sum()
    }

    /// Number of distinct elements.
    pub fn distinct_count(&self) -> usize {
        self.elems.len()
    }

    /// `true` iff the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Iterate over `(element, multiplicity)` in element order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Natural)> {
        self.elems.iter()
    }

    /// Iterate over distinct elements in order.
    pub fn elements(&self) -> impl Iterator<Item = &Value> {
        self.elems.keys()
    }

    /// The maximal multiplicity of any element (zero for the empty bag).
    /// This is the quantity bounded polynomially in Theorem 4.4 and
    /// exponentially in Theorem 5.1.
    pub fn max_multiplicity(&self) -> Natural {
        self.elems.values().max().cloned().unwrap_or_default()
    }

    /// Subbag test `B ⊑ B′`: whenever `o` n-belongs to `B`, `o` p-belongs
    /// to `B′` for some `p ≥ n`.
    pub fn is_subbag_of(&self, other: &Bag) -> bool {
        self.elems
            .iter()
            .all(|(value, mult)| &other.multiplicity(value) >= mult)
    }

    // ----- basic bag operations (Section 3) -----

    /// Additive union `B ∪⁺ B′`: multiplicities add (`n = p + q`).
    pub fn additive_union(&self, other: &Bag) -> Bag {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out = self.clone();
        let elems = out.elems_mut();
        for (value, mult) in other.elems.iter() {
            *elems.entry(value.clone()).or_default() += mult;
        }
        out
    }

    /// Subtraction `B − B′`: monus on multiplicities (`n = sup(0, p − q)`).
    pub fn subtract(&self, other: &Bag) -> Bag {
        if other.is_empty() {
            return self.clone();
        }
        let mut out = Bag::new();
        for (value, mult) in self.elems.iter() {
            let rem = mult.monus(&other.multiplicity(value));
            out.insert_with_multiplicity(value.clone(), rem);
        }
        out
    }

    /// Maximal union `B ∪ B′`: `n = sup(p, q)`.
    pub fn max_union(&self, other: &Bag) -> Bag {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut out = self.clone();
        let elems = out.elems_mut();
        for (value, mult) in other.elems.iter() {
            let entry = elems.entry(value.clone()).or_default();
            if &*entry < mult {
                *entry = mult.clone();
            }
        }
        out
    }

    /// Intersection `B ∩ B′`: `n = inf(p, q)`.
    ///
    /// Iterates the side with fewer distinct elements (the operation is
    /// symmetric and absent elements have multiplicity zero), so
    /// intersecting a huge bag with a small one probes the huge map only
    /// `|small|` times.
    pub fn intersect(&self, other: &Bag) -> Bag {
        let (small, big) = if self.distinct_count() <= other.distinct_count() {
            (self, other)
        } else {
            (other, self)
        };
        let mut out = Bag::new();
        for (value, mult) in small.elems.iter() {
            let min = mult.clone().min(big.multiplicity(value));
            out.insert_with_multiplicity(value.clone(), min);
        }
        out
    }

    /// Duplicate elimination `ε(B)`: each element of `B` 1-belongs to the
    /// result.
    pub fn dedup(&self) -> Bag {
        Bag {
            elems: Arc::new(
                self.elems
                    .keys()
                    .map(|value| (value.clone(), Natural::one()))
                    .collect(),
            ),
        }
    }

    /// Scale every multiplicity by `factor` (used by `δ` on nested bags
    /// with duplicated inner bags).
    pub fn scale(&self, factor: &Natural) -> Bag {
        if factor.is_zero() {
            return Bag::new();
        }
        if factor.is_one() {
            return self.clone();
        }
        Bag {
            elems: Arc::new(
                self.elems
                    .iter()
                    .map(|(value, mult)| (value.clone(), mult * factor))
                    .collect(),
            ),
        }
    }

    // ----- constructive operations -----

    /// Cartesian product `B × B′` on bags of tuples: tuples concatenate and
    /// multiplicities multiply (`n = p·q`).
    pub fn product(&self, other: &Bag) -> Result<Bag, BagError> {
        let mut out = Bag::new();
        for (left, lm) in self.elems.iter() {
            let left_fields = left
                .as_tuple()
                .ok_or_else(|| BagError::NotATuple(left.clone()))?;
            for (right, rm) in other.elems.iter() {
                let right_fields = right
                    .as_tuple()
                    .ok_or_else(|| BagError::NotATuple(right.clone()))?;
                out.insert_with_multiplicity(
                    Value::concat_tuples(left_fields, right_fields),
                    lm * rm,
                );
            }
        }
        Ok(out)
    }

    /// Powerset `P(B) = ⟦b | b ⊑ B⟧`: one occurrence of **each distinct
    /// subbag** of `B`. There are exactly `Π (mᵢ + 1)` of them. Because
    /// that count explodes, callers pass an element budget and receive
    /// [`BagError::TooLarge`] when the exact predicted count exceeds it.
    pub fn powerset(&self, max_elements: u64) -> Result<Bag, BagError> {
        // Distinct subbags are enumerated exactly once, so the output map
        // can be bulk-built from the collected pairs (sort + linear build)
        // instead of paying a B-tree insert per subbag. The capacity is
        // clamped to the caller's budget, never trusted from a raw
        // `to_u64` conversion.
        let predicted = self.powerset_cardinality();
        let mut pairs = Vec::with_capacity(subbag_capacity(&predicted, max_elements));
        self.for_each_subbag(predicted, max_elements, |entries, counts| {
            pairs.push((Value::Bag(build_subbag(entries, counts)), Natural::one()));
        })?;
        Ok(Bag {
            elems: Arc::new(pairs.into_iter().collect()),
        })
    }

    /// The exact number of distinct subbags, `Π (mᵢ + 1)` — what
    /// [`Bag::powerset`] would produce. (`n + 1` for the paper's bag of
    /// `n` copies of one constant.)
    pub fn powerset_cardinality(&self) -> Natural {
        let mut total = Natural::one();
        for mult in self.elems.values() {
            total *= &mult.succ();
        }
        total
    }

    /// Powerbag `P_b(B)` (Definition 5.1): distinguishes occurrences, so a
    /// subbag choosing `jᵢ` of `mᵢ` duplicates occurs `Π C(mᵢ, jᵢ)` times.
    /// Output cardinality is `2^|B|` (`2ⁿ` for `n` copies of one constant)
    /// while the number of *distinct* elements stays `Π (mᵢ + 1)`.
    pub fn powerbag(&self, max_elements: u64) -> Result<Bag, BagError> {
        let predicted = self.powerset_cardinality();
        let mut pairs = Vec::with_capacity(subbag_capacity(&predicted, max_elements));
        self.for_each_subbag(predicted, max_elements, |entries, counts| {
            let mut weight = Natural::one();
            for ((_, mult), &count) in entries.iter().zip(counts) {
                weight *= &Natural::binomial(mult, count);
            }
            pairs.push((Value::Bag(build_subbag(entries, counts)), weight));
        })?;
        Ok(Bag {
            elems: Arc::new(pairs.into_iter().collect()),
        })
    }

    /// The exact total cardinality of `P_b(B)`, namely `2^|B|`.
    ///
    /// When `|B| > u64::MAX` the value `2^|B|` is not representable (its
    /// limb vector alone would need ≥ 2^58 entries), so instead of
    /// attempting the allocation this reports [`BagError::TooLarge`] with
    /// the exact cardinality that overflowed.
    pub fn powerbag_cardinality(&self) -> Result<Natural, BagError> {
        let card = self.cardinality();
        match card.to_u64() {
            Some(n) => Ok(Natural::pow2(n)),
            None => Err(BagError::TooLarge {
                predicted: card,
                limit: u64::MAX,
            }),
        }
    }

    /// Bag-destroy `δ(B)` on a bag of bags:
    /// `δ(⟦x₁, …, xₙ⟧) = x₁ ∪⁺ ⋯ ∪⁺ xₙ` with duplicated inner bags
    /// contributing once per occurrence.
    pub fn destroy(&self) -> Result<Bag, BagError> {
        // δ(⟦x⟧) = x: share the inner bag instead of rebuilding it.
        if self.distinct_count() == 1 {
            let (value, mult) = self.elems.iter().next().expect("one element");
            let inner = value
                .as_bag()
                .ok_or_else(|| BagError::NotABag(value.clone()))?;
            return Ok(if mult.is_one() {
                inner.clone()
            } else {
                inner.scale(mult)
            });
        }
        let mut out = Bag::new();
        for (value, mult) in self.elems.iter() {
            let inner = value
                .as_bag()
                .ok_or_else(|| BagError::NotABag(value.clone()))?;
            for (elem, inner_mult) in inner.iter() {
                out.insert_with_multiplicity(elem.clone(), inner_mult * mult);
            }
        }
        Ok(out)
    }

    // ----- filters -----

    /// Restructuring `MAP_φ(B)`: applies `φ` to every member; images
    /// accumulate multiplicities (`n = n₁ + ⋯ + n_l` over the preimages).
    pub fn map<E>(&self, mut f: impl FnMut(&Value) -> Result<Value, E>) -> Result<Bag, E> {
        let mut out = Bag::new();
        for (value, mult) in self.elems.iter() {
            out.insert_with_multiplicity(f(value)?, mult.clone());
        }
        Ok(out)
    }

    /// Selection `σ(B)`: keeps elements satisfying the predicate with their
    /// multiplicities.
    pub fn select<E>(&self, mut pred: impl FnMut(&Value) -> Result<bool, E>) -> Result<Bag, E> {
        let mut out = Bag::new();
        for (value, mult) in self.elems.iter() {
            if pred(value)? {
                out.insert_with_multiplicity(value.clone(), mult.clone());
            }
        }
        Ok(out)
    }

    /// Projection helper `π_{i₁,…,iₙ}` over 1-based attribute indices —
    /// the paper's abbreviation for `MAP_{λx.[α_{i₁}(x), …]}`.
    pub fn project(&self, indices: &[usize]) -> Result<Bag, BagError> {
        self.map(|value| {
            let fields = value
                .as_tuple()
                .ok_or_else(|| BagError::NotATuple(value.clone()))?;
            let mut out = Vec::with_capacity(indices.len());
            for &ix in indices {
                let field = fields.get(ix.checked_sub(1).ok_or(BagError::BadArity {
                    index: ix,
                    arity: fields.len(),
                })?);
                out.push(
                    field
                        .ok_or(BagError::BadArity {
                            index: ix,
                            arity: fields.len(),
                        })?
                        .clone(),
                );
            }
            Ok(Value::Tuple(out.into()))
        })
    }

    /// The nest operator of [PG88] (Conclusion): group a bag of tuples by
    /// the 1-based attributes in `group`; each distinct group key appears
    /// **once**, extended with a bag holding the residual-attribute tuples
    /// of its members (inner multiplicities preserved).
    pub fn nest(&self, group: &[usize]) -> Result<Bag, BagError> {
        use std::collections::BTreeMap;
        // Membership bitmask over 1-based attribute positions, precomputed
        // so the residual split is O(arity) per row instead of
        // O(arity × |group|). Fixed-size (no allocation keyed to attacker-
        // controlled indices); positions beyond the mask — which only
        // matter for equally wide rows — fall back to the linear scan.
        let mut mask = 0u128;
        for &ix in group {
            if (1..=128).contains(&ix) {
                mask |= 1 << (ix - 1);
            }
        }
        let grouped = |i: usize| -> bool {
            if i < 128 {
                mask >> i & 1 == 1
            } else {
                group.contains(&(i + 1))
            }
        };
        let mut groups: BTreeMap<Vec<Value>, Bag> = BTreeMap::new();
        for (row, mult) in self.elems.iter() {
            let fields = row
                .as_tuple()
                .ok_or_else(|| BagError::NotATuple(row.clone()))?;
            let mut key = Vec::with_capacity(group.len());
            for &ix in group {
                let field =
                    ix.checked_sub(1)
                        .and_then(|i| fields.get(i))
                        .ok_or(BagError::BadArity {
                            index: ix,
                            arity: fields.len(),
                        })?;
                key.push(field.clone());
            }
            let residual: Vec<Value> = fields
                .iter()
                .enumerate()
                .filter(|(i, _)| !grouped(*i))
                .map(|(_, v)| v.clone())
                .collect();
            groups
                .entry(key)
                .or_default()
                .insert_with_multiplicity(Value::Tuple(residual.into()), mult.clone());
        }
        let mut out = Bag::new();
        for (key, inner) in groups {
            let mut fields = key;
            fields.push(Value::Bag(inner));
            out.insert(Value::Tuple(fields.into()));
        }
        Ok(out)
    }

    /// Shared subbag enumeration for `P` and `P_b`: calls `f` once per
    /// distinct subbag with the source entries (in element order) and the
    /// occurrence counts the subbag takes of each. Streaming — the
    /// `Π(mᵢ+1)` choices are never buffered, so the only allocation is the
    /// one `counts` odometer, sized exactly to the distinct-element count
    /// (no cardinality-derived capacity guesses).
    /// `predicted` is the caller-computed [`Bag::powerset_cardinality`]
    /// (shared with the allocation hint so it is only computed once).
    fn for_each_subbag(
        &self,
        predicted: Natural,
        max_elements: u64,
        mut f: impl FnMut(&[(&Value, &Natural)], &[u64]),
    ) -> Result<(), BagError> {
        debug_assert_eq!(predicted, self.powerset_cardinality());
        if predicted > Natural::from(max_elements) {
            return Err(BagError::TooLarge {
                predicted,
                limit: max_elements,
            });
        }
        let entries: Vec<(&Value, &Natural)> = self.elems.iter().collect();
        // Since Π(mᵢ+1) ≤ max_elements (a u64), every mᵢ fits in u64.
        let bounds: Vec<u64> = entries
            .iter()
            .map(|(_, m)| m.to_u64().expect("bounded by predicted cardinality"))
            .collect();
        let mut current = vec![0u64; bounds.len()];
        loop {
            f(&entries, &current);
            // Odometer increment over 0..=bounds[i].
            let mut pos = 0;
            loop {
                if pos == bounds.len() {
                    return Ok(());
                }
                if current[pos] < bounds[pos] {
                    current[pos] += 1;
                    break;
                }
                current[pos] = 0;
                pos += 1;
            }
        }
    }
}

/// Allocation hint for subbag enumeration: the predicted distinct count
/// when it fits, clamped by the element budget (never trusted raw).
fn subbag_capacity(predicted: &Natural, max_elements: u64) -> usize {
    predicted.to_u64().map_or(0, |n| n.min(max_elements)) as usize
}

/// Materialize one subbag choice: `counts[i]` occurrences of the `i`-th
/// source entry. Subbags are small (bounded by the source's distinct
/// count), where plain inserts beat the `FromIterator` sort-and-bulk-build
/// machinery; keys arrive in element order, so every insert appends.
fn build_subbag(entries: &[(&Value, &Natural)], counts: &[u64]) -> Bag {
    let mut elems: BTreeMap<Value, Natural> = BTreeMap::new();
    for ((value, _), &count) in entries.iter().zip(counts) {
        if count > 0 {
            elems.insert((*value).clone(), Natural::from(count));
        }
    }
    Bag {
        elems: Arc::new(elems),
    }
}

impl FromIterator<Value> for Bag {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Bag::from_values(iter)
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{{")?;
        let mut first = true;
        for (value, mult) in self.elems.iter() {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            if mult.is_one() {
                write!(f, "{value}")?;
            } else {
                write!(f, "{value}^{mult}")?;
            }
        }
        f.write_str("}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sym(s: &str) -> Value {
        Value::sym(s)
    }

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    fn bag_of(pairs: &[(&str, u64)]) -> Bag {
        Bag::from_counted(pairs.iter().map(|(s, m)| (sym(s), nat(*m))))
    }

    #[test]
    fn multiplicity_arithmetic_of_the_four_unions() {
        let b1 = bag_of(&[("a", 3), ("b", 1)]);
        let b2 = bag_of(&[("a", 2), ("c", 5)]);
        let add = b1.additive_union(&b2);
        assert_eq!(add.multiplicity(&sym("a")), nat(5));
        assert_eq!(add.multiplicity(&sym("b")), nat(1));
        assert_eq!(add.multiplicity(&sym("c")), nat(5));
        let sub = b1.subtract(&b2);
        assert_eq!(sub.multiplicity(&sym("a")), nat(1));
        assert_eq!(sub.multiplicity(&sym("b")), nat(1));
        assert!(!sub.contains(&sym("c"))); // sup(0, 0-5) = 0
        let max = b1.max_union(&b2);
        assert_eq!(max.multiplicity(&sym("a")), nat(3));
        assert_eq!(max.multiplicity(&sym("c")), nat(5));
        let int = b1.intersect(&b2);
        assert_eq!(int.multiplicity(&sym("a")), nat(2));
        assert!(!int.contains(&sym("b")));
        assert!(!int.contains(&sym("c")));
    }

    #[test]
    fn zero_multiplicities_never_stored() {
        let b1 = bag_of(&[("a", 2)]);
        let b2 = bag_of(&[("a", 2)]);
        let diff = b1.subtract(&b2);
        assert!(diff.is_empty());
        assert_eq!(diff, Bag::new());
    }

    #[test]
    fn product_multiplies_multiplicities() {
        // The Section 4 counting technique: B with n×[a,b] and m×[b,a].
        let n = 4u64;
        let m = 3u64;
        let mut b = Bag::new();
        b.insert_with_multiplicity(Value::tuple([sym("a"), sym("b")]), nat(n));
        b.insert_with_multiplicity(Value::tuple([sym("b"), sym("a")]), nat(m));
        let prod = b.product(&b).unwrap();
        let abab = Value::tuple([sym("a"), sym("b"), sym("a"), sym("b")]);
        let baab = Value::tuple([sym("b"), sym("a"), sym("a"), sym("b")]);
        assert_eq!(prod.multiplicity(&abab), nat(n * n));
        assert_eq!(prod.multiplicity(&baab), nat(m * n));
        assert_eq!(prod.cardinality(), nat((n + m) * (n + m)));
    }

    #[test]
    fn product_rejects_non_tuples() {
        let b = Bag::singleton(sym("a"));
        assert!(matches!(b.product(&b), Err(BagError::NotATuple(_))));
    }

    #[test]
    fn powerset_of_n_copies_has_n_plus_1_elements() {
        // Introduction: "the powerbag of a bag containing n occurrences of a
        // single constant has cardinality 2^n, while its powerset has
        // cardinality n+1."
        for n in 0u64..6 {
            let b = Bag::repeated(sym("a"), n);
            let ps = b.powerset(1 << 20).unwrap();
            assert_eq!(ps.cardinality(), nat(n + 1));
            assert_eq!(b.powerset_cardinality(), nat(n + 1));
            let pb = b.powerbag(1 << 20).unwrap();
            assert_eq!(pb.cardinality(), Natural::pow2(n));
            assert_eq!(b.powerbag_cardinality().unwrap(), Natural::pow2(n));
        }
    }

    #[test]
    fn powerset_elements_are_exactly_the_subbags() {
        let b = bag_of(&[("a", 2), ("b", 1)]);
        let ps = b.powerset(1 << 20).unwrap();
        assert_eq!(ps.cardinality(), nat(6)); // (2+1)(1+1)
        for (sub, mult) in ps.iter() {
            assert!(mult.is_one());
            assert!(sub.as_bag().unwrap().is_subbag_of(&b));
        }
        // Every subbag present.
        assert!(ps.contains(&Value::Bag(Bag::new())));
        assert!(ps.contains(&Value::Bag(b.clone())));
        assert!(ps.contains(&Value::Bag(bag_of(&[("a", 1), ("b", 1)]))));
    }

    #[test]
    fn powerbag_matches_definition_5_1_example() {
        // P_b(⟦a,a⟧) = ⟦⟦⟧, ⟦a⟧, ⟦a⟧, ⟦a,a⟧⟧ vs P(⟦a,a⟧) = ⟦⟦⟧, ⟦a⟧, ⟦a,a⟧⟧.
        let b = Bag::repeated(sym("a"), 2u64);
        let pb = b.powerbag(100).unwrap();
        assert_eq!(pb.multiplicity(&Value::Bag(Bag::new())), nat(1));
        assert_eq!(
            pb.multiplicity(&Value::Bag(Bag::repeated(sym("a"), 1u64))),
            nat(2)
        );
        assert_eq!(pb.multiplicity(&Value::Bag(b.clone())), nat(1));
        let ps = b.powerset(100).unwrap();
        assert_eq!(
            ps.multiplicity(&Value::Bag(Bag::repeated(sym("a"), 1u64))),
            nat(1)
        );
    }

    #[test]
    fn powerbag_cardinality_rejects_unrepresentable_exponent() {
        // |B| = 2^70 > u64::MAX: 2^|B| would need a ~2^64-limb vector, so
        // the prediction must refuse instead of attempting the allocation.
        let huge = Bag::repeated(sym("a"), Natural::pow2(70));
        match huge.powerbag_cardinality() {
            Err(BagError::TooLarge { predicted, .. }) => {
                assert_eq!(predicted, Natural::pow2(70));
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Representable sizes still compute exactly.
        assert_eq!(
            Bag::repeated(sym("a"), 10u64)
                .powerbag_cardinality()
                .unwrap(),
            Natural::pow2(10)
        );
    }

    #[test]
    fn powerset_respects_budget() {
        let b = Bag::repeated(sym("a"), 1_000_000u64);
        let err = b.powerset(1000).unwrap_err();
        match err {
            BagError::TooLarge { predicted, limit } => {
                assert_eq!(predicted, nat(1_000_001));
                assert_eq!(limit, 1000);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn destroy_sums_inner_bags_scaled_by_outer_multiplicity() {
        // δ(⟦⟦a,a⟧, ⟦a,b⟧²⟧) = ⟦a⁴, b²⟧
        let inner1 = bag_of(&[("a", 2)]);
        let inner2 = bag_of(&[("a", 1), ("b", 1)]);
        let mut outer = Bag::new();
        outer.insert(Value::Bag(inner1));
        outer.insert_with_multiplicity(Value::Bag(inner2), nat(2));
        let flat = outer.destroy().unwrap();
        assert_eq!(flat.multiplicity(&sym("a")), nat(4));
        assert_eq!(flat.multiplicity(&sym("b")), nat(2));
    }

    #[test]
    fn destroy_rejects_non_bags() {
        let b = Bag::singleton(sym("a"));
        assert!(matches!(b.destroy(), Err(BagError::NotABag(_))));
    }

    #[test]
    fn map_accumulates_preimage_multiplicities() {
        // MAP_{λx.β(x)}(⟦a,a,b⟧) = ⟦⟦a⟧,⟦a⟧,⟦b⟧⟧ — i.e. ⟦a⟧ has mult 2.
        let b = bag_of(&[("a", 2), ("b", 1)]);
        let mapped: Bag = b
            .map(|v| Ok::<_, std::convert::Infallible>(Value::Bag(Bag::singleton(v.clone()))))
            .unwrap();
        assert_eq!(
            mapped.multiplicity(&Value::Bag(Bag::singleton(sym("a")))),
            nat(2)
        );
        // Collapsing map: everything to one constant sums all multiplicities.
        let collapsed: Bag = b
            .map(|_| Ok::<_, std::convert::Infallible>(sym("z")))
            .unwrap();
        assert_eq!(collapsed.multiplicity(&sym("z")), nat(3));
    }

    #[test]
    fn select_preserves_multiplicities() {
        let b = bag_of(&[("a", 2), ("b", 5)]);
        let picked = b
            .select(|v| Ok::<_, std::convert::Infallible>(*v == sym("b")))
            .unwrap();
        assert_eq!(picked.multiplicity(&sym("b")), nat(5));
        assert_eq!(picked.distinct_count(), 1);
    }

    #[test]
    fn dedup_keeps_one_of_each() {
        let b = bag_of(&[("a", 7), ("b", 2)]);
        let d = b.dedup();
        assert_eq!(d.multiplicity(&sym("a")), nat(1));
        assert_eq!(d.multiplicity(&sym("b")), nat(1));
        assert_eq!(d.cardinality(), nat(2));
        assert_eq!(d.dedup(), d); // idempotent
    }

    #[test]
    fn nest_rejects_huge_attribute_index_without_allocating() {
        // A hostile 1-based index must produce BadArity (or an empty
        // result on an empty bag), never an index-sized allocation.
        let mut b = Bag::new();
        b.insert(Value::tuple([sym("x"), sym("y")]));
        assert!(matches!(
            b.nest(&[1_000_000_000_000]),
            Err(BagError::BadArity { .. })
        ));
        assert!(Bag::new().nest(&[1_000_000_000_000]).unwrap().is_empty());
        // Group indices past the u128 mask still split correctly when the
        // rows are wide enough.
        let wide = Bag::from_values([Value::tuple((0..130).map(Value::int))]);
        let nested = wide.nest(&[130]).unwrap();
        let (row, _) = nested.iter().next().unwrap();
        let fields = row.as_tuple().unwrap();
        assert_eq!(fields[0], Value::int(129)); // key = attribute 130
        let residual = fields[1].as_bag().unwrap();
        let (res_row, _) = residual.iter().next().unwrap();
        assert_eq!(res_row.as_tuple().unwrap().len(), 129);
    }

    #[test]
    fn project_is_map_composition() {
        let mut b = Bag::new();
        b.insert(Value::tuple([sym("x"), sym("y"), sym("z")]));
        let projected = b.project(&[3, 1]).unwrap();
        assert!(projected.contains(&Value::tuple([sym("z"), sym("x")])));
        assert!(matches!(
            b.project(&[4]),
            Err(BagError::BadArity { index: 4, arity: 3 })
        ));
        assert!(matches!(b.project(&[0]), Err(BagError::BadArity { .. })));
    }

    #[test]
    fn subbag_partial_order() {
        let small = bag_of(&[("a", 1)]);
        let big = bag_of(&[("a", 3), ("b", 1)]);
        assert!(small.is_subbag_of(&big));
        assert!(!big.is_subbag_of(&small));
        assert!(Bag::new().is_subbag_of(&small));
        assert!(small.is_subbag_of(&small));
    }

    #[test]
    fn algebraic_laws_on_samples() {
        let b1 = bag_of(&[("a", 3), ("b", 1)]);
        let b2 = bag_of(&[("a", 1), ("c", 2)]);
        let b3 = bag_of(&[("b", 4)]);
        // Commutativity (∪⁺, ∪, ∩) and associativity (∪⁺, ∪, ∩).
        assert_eq!(b1.additive_union(&b2), b2.additive_union(&b1));
        assert_eq!(b1.max_union(&b2), b2.max_union(&b1));
        assert_eq!(b1.intersect(&b2), b2.intersect(&b1));
        assert_eq!(
            b1.additive_union(&b2).additive_union(&b3),
            b1.additive_union(&b2.additive_union(&b3))
        );
        assert_eq!(
            b1.max_union(&b2).max_union(&b3),
            b1.max_union(&b2.max_union(&b3))
        );
        assert_eq!(
            b1.intersect(&b2).intersect(&b3),
            b1.intersect(&b2.intersect(&b3))
        );
    }

    #[test]
    fn display_uses_multiplicity_exponents() {
        let b = bag_of(&[("a", 2), ("b", 1)]);
        assert_eq!(b.to_string(), "{{a^2, b}}");
    }
}
