//! Bags with exact multiplicities and the primitive operations of Section 3.
//!
//! A bag is a finite multiset: a map from distinct elements to positive
//! multiplicities. An element *n-belongs* to a bag if it has exactly `n`
//! occurrences. The operations here are the data-level semantics of the
//! BALG operators; the expression AST in [`crate::expr`] composes them.
//!
//! The counted representation is the optimization the paper's Section 3
//! anticipates ("representing each object in association with the number of
//! its occurrences"); the paper's complexity measure nevertheless charges
//! for the expanded standard encoding, which
//! [`Value::encoded_size`](crate::value::Value::encoded_size) computes.
//!
//! # Sorted-slice representation
//!
//! Elements live in one contiguous slice of `(Value, Natural)` pairs kept
//! in strictly ascending [`Value`] order with no zero multiplicities — the
//! two invariants every constructor here re-establishes. Compared to the
//! previous `BTreeMap`:
//!
//! * lookups are a binary search over one allocation (no tree-node hops);
//! * the merge operations (`∪⁺`, `−`, `∪`, `∩`) are linear two-pointer
//!   passes producing their output already sorted;
//! * `powerset`/`powerbag` subbags are bulk-built straight from the
//!   enumeration (the source entries arrive in element order), skipping
//!   the per-subbag tree construction that dominated those operators;
//! * equality, ordering, and hashing are slice operations, and the
//!   lexicographic order over `(element, multiplicity)` pairs is exactly
//!   the order the old map iteration induced, so the total [`Value`] order
//!   of Theorem 5.1's PSPACE encoding is unchanged.
//!
//! The slice sits behind an [`Arc`] (as a `Vec`, so a uniquely-owned bag
//! can still be mutated in place) with copy-on-write mutation: cloning a
//! bag — which the evaluator does for every variable lookup, every λ
//! binding, and every nested-bag value — is a reference-count bump, and
//! shared clones unlock pointer-equality fast paths in `==` and `cmp`.
//!
//! Insert-heavy construction goes through [`BagBuilder`], which batches
//! out-of-order insertions and merges them in bulk instead of paying a
//! `memmove` per insertion.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

use crate::natural::Natural;
use crate::value::Value;

/// An error from a primitive bag operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BagError {
    /// Cartesian product or projection applied to a non-tuple element.
    NotATuple(Value),
    /// Bag-destroy `δ` applied to a bag whose elements are not bags.
    NotABag(Value),
    /// Attribute projection `α₀`: attribute indices are 1-based, so index
    /// zero is invalid on every tuple (distinct from [`BagError::BadArity`],
    /// which reports a positive index past the tuple's arity).
    AttrIndexZero,
    /// Attribute projection `αᵢ` with an out-of-range index `i ≥ 1`.
    BadArity {
        /// Requested 1-based attribute index.
        index: usize,
        /// Actual tuple arity.
        arity: usize,
    },
    /// An operator's output would exceed the caller's element budget.
    /// `predicted` is the exact predicted count for powerset/powerbag
    /// (`Π(mᵢ+1)` distinct subbags) and the distinct-pair upper bound
    /// `|B|·|B′|` for the Cartesian product.
    TooLarge {
        /// Predicted number of distinct output elements.
        predicted: Natural,
        /// The caller-imposed budget.
        limit: u64,
    },
}

impl fmt::Display for BagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BagError::NotATuple(v) => write!(f, "expected a tuple element, got {v}"),
            BagError::NotABag(v) => write!(f, "expected a bag element, got {v}"),
            BagError::AttrIndexZero => {
                f.write_str("attribute indices are 1-based: α0 is not a valid attribute")
            }
            BagError::BadArity { index, arity } => {
                write!(f, "attribute α{index} out of range for arity {arity}")
            }
            BagError::TooLarge { predicted, limit } => write!(
                f,
                "operator would produce {predicted} elements, over the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for BagError {}

/// Resolve the 1-based attribute `index` in a tuple's fields — the shared
/// `αᵢ` semantics of the BALG and RALG evaluators. Index 0 is rejected
/// explicitly as [`BagError::AttrIndexZero`] (attribute indices are
/// 1-based; the old `wrapping_sub` lookup happened to miss but produced a
/// misleading `BadArity { index: 0, .. }`), and positive out-of-range
/// indices report the actual arity.
pub fn attr_field(fields: &[Value], index: usize) -> Result<&Value, BagError> {
    let i = index.checked_sub(1).ok_or(BagError::AttrIndexZero)?;
    fields.get(i).ok_or(BagError::BadArity {
        index,
        arity: fields.len(),
    })
}

/// A homogeneous bag of [`Value`]s with exact [`Natural`] multiplicities.
///
/// Invariant: the pair slice is strictly ascending in [`Value`] order and
/// stores no multiplicity-zero entries, so equality and ordering of bags
/// are canonical and iteration is in the total [`Value`] order, which the
/// PSPACE encoding of Theorem 5.1 relies on.
///
/// Cloning is `O(1)` (shared `Arc`); the first mutation of a shared bag
/// copies the pair slice (copy-on-write).
#[derive(Clone, Debug)]
pub struct Bag {
    elems: Arc<Vec<(Value, Natural)>>,
}

/// All empty bags share one allocation, so `Bag::new()` is free and
/// comparisons against the empty bag hit the pointer-equality fast path.
fn shared_empty() -> Arc<Vec<(Value, Natural)>> {
    static EMPTY: OnceLock<Arc<Vec<(Value, Natural)>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

impl Default for Bag {
    fn default() -> Bag {
        Bag::new()
    }
}

impl PartialEq for Bag {
    fn eq(&self, other: &Bag) -> bool {
        Arc::ptr_eq(&self.elems, &other.elems) || self.elems == other.elems
    }
}

impl Eq for Bag {}

impl PartialOrd for Bag {
    fn partial_cmp(&self, other: &Bag) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bag {
    fn cmp(&self, other: &Bag) -> Ordering {
        if Arc::ptr_eq(&self.elems, &other.elems) {
            return Ordering::Equal;
        }
        // Lexicographic over (element, multiplicity) pairs in element
        // order — identical to the order the BTreeMap representation
        // induced, so `Value`'s total order is unchanged.
        self.elems.cmp(&other.elems)
    }
}

impl Hash for Bag {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (*self.elems).hash(state);
    }
}

impl Bag {
    /// The empty bag `⟦⟧`.
    pub fn new() -> Bag {
        Bag {
            elems: shared_empty(),
        }
    }

    /// Wrap a pair vector that already satisfies the representation
    /// invariant (strictly ascending keys, no zero multiplicities).
    pub(crate) fn from_sorted_vec(pairs: Vec<(Value, Natural)>) -> Bag {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bag keys must be strictly ascending"
        );
        debug_assert!(
            pairs.iter().all(|(_, m)| !m.is_zero()),
            "bags store no zero multiplicities"
        );
        if pairs.is_empty() {
            return Bag::new();
        }
        Bag {
            elems: Arc::new(pairs),
        }
    }

    /// Mutable access to the pair vector for same-crate patching
    /// ([`crate::zbag::ZBag::apply_into`]); copy-on-write like every
    /// mutation, and the caller must re-establish the invariant.
    pub(crate) fn elems_mut(&mut self) -> &mut Vec<(Value, Natural)> {
        Arc::make_mut(&mut self.elems)
    }

    /// Read-only view of the sorted `(element, multiplicity)` pair slice
    /// (strictly ascending keys, no zero multiplicities) — what
    /// [`crate::par`]'s partitioned kernels and the downstream evaluators'
    /// chunked probe loops split at key boundaries. Construction stays
    /// crate-private, so the invariant cannot be broken through this view.
    pub fn pairs(&self) -> &[(Value, Natural)] {
        &self.elems
    }

    /// Check the representation invariant: strictly ascending keys, no
    /// zero multiplicities. `true` on a well-formed bag. Intended for
    /// `debug_assert!` at construction boundaries and for test harnesses;
    /// it is `O(n)` and should not guard hot paths.
    pub fn debug_validate(&self) -> bool {
        self.elems.windows(2).all(|w| w[0].0 < w[1].0)
            && self.elems.iter().all(|(_, mult)| !mult.is_zero())
    }

    /// `true` iff the two bags share one copy-on-write slice allocation —
    /// the identity the [`crate::index::IndexCache`] keys cached indexes
    /// by. Shared representation implies equality; the converse does not
    /// hold (equal bags may be separately allocated).
    pub fn shares_representation(&self, other: &Bag) -> bool {
        Arc::ptr_eq(&self.elems, &other.elems)
    }

    /// The bagging constructor `β(o) = ⟦o⟧`: a bag where `o` 1-belongs.
    pub fn singleton(value: Value) -> Bag {
        Bag::from_sorted_vec(vec![(value, Natural::one())])
    }

    /// A bag containing `count` occurrences of `value` — the paper's `Bᵗᵢ`
    /// notation and its integer encoding (an integer `i` is the bag with
    /// `i` occurrences of a fixed constant).
    pub fn repeated(value: Value, count: impl Into<Natural>) -> Bag {
        let count = count.into();
        if count.is_zero() {
            return Bag::new();
        }
        Bag::from_sorted_vec(vec![(value, count)])
    }

    /// Build from values, each contributing one occurrence.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Bag {
        let mut builder = BagBuilder::new();
        for value in values {
            builder.push_one(value);
        }
        builder.build()
    }

    /// Build from `(value, multiplicity)` pairs; zero multiplicities are
    /// dropped, duplicate keys accumulate.
    pub fn from_counted(pairs: impl IntoIterator<Item = (Value, Natural)>) -> Bag {
        let mut builder = BagBuilder::new();
        for (value, mult) in pairs {
            builder.push(value, mult);
        }
        builder.build()
    }

    /// Add one occurrence of `value`.
    pub fn insert(&mut self, value: Value) {
        self.insert_with_multiplicity(value, Natural::one());
    }

    /// Add `mult` occurrences of `value` (no-op when `mult` is zero).
    ///
    /// Appending past the current maximum element is `O(1)` amortized;
    /// out-of-order insertion into a uniquely-owned bag is a binary search
    /// plus a `memmove`. Prefer [`BagBuilder`] for loops that insert in
    /// arbitrary order.
    pub fn insert_with_multiplicity(&mut self, value: Value, mult: Natural) {
        if mult.is_zero() {
            return;
        }
        let elems = Arc::make_mut(&mut self.elems);
        match elems.last_mut() {
            None => elems.push((value, mult)),
            Some(last) => match last.0.cmp(&value) {
                Ordering::Less => elems.push((value, mult)),
                Ordering::Equal => last.1 += &mult,
                Ordering::Greater => match elems.binary_search_by(|probe| probe.0.cmp(&value)) {
                    Ok(ix) => elems[ix].1 += &mult,
                    Err(ix) => elems.insert(ix, (value, mult)),
                },
            },
        }
    }

    /// The number of occurrences of `o` — the `n` such that `o` n-belongs.
    pub fn multiplicity(&self, value: &Value) -> Natural {
        match self.elems.binary_search_by(|probe| probe.0.cmp(value)) {
            Ok(ix) => self.elems[ix].1.clone(),
            Err(_) => Natural::zero(),
        }
    }

    /// `true` iff `o` p-belongs for some `p > 0`.
    pub fn contains(&self, value: &Value) -> bool {
        self.elems
            .binary_search_by(|probe| probe.0.cmp(value))
            .is_ok()
    }

    /// Total number of occurrences, `Σ mᵢ` (the paper's bag size up to
    /// encoding constants).
    pub fn cardinality(&self) -> Natural {
        self.elems.iter().map(|(_, m)| m).sum()
    }

    /// Number of distinct elements.
    pub fn distinct_count(&self) -> usize {
        self.elems.len()
    }

    /// `true` iff the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Iterate over `(element, multiplicity)` in element order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Natural)> {
        self.elems.iter().map(|(v, m)| (v, m))
    }

    /// Iterate over distinct elements in order.
    pub fn elements(&self) -> impl Iterator<Item = &Value> {
        self.elems.iter().map(|(v, _)| v)
    }

    /// The maximal multiplicity of any element (zero for the empty bag).
    /// This is the quantity bounded polynomially in Theorem 4.4 and
    /// exponentially in Theorem 5.1.
    pub fn max_multiplicity(&self) -> Natural {
        self.elems
            .iter()
            .map(|(_, m)| m)
            .max()
            .cloned()
            .unwrap_or_default()
    }

    /// Subbag test `B ⊑ B′`: whenever `o` n-belongs to `B`, `o` p-belongs
    /// to `B′` for some `p ≥ n`. A single merge walk over the two sorted
    /// slices.
    pub fn is_subbag_of(&self, other: &Bag) -> bool {
        if Arc::ptr_eq(&self.elems, &other.elems) {
            return true;
        }
        if self.distinct_count() > other.distinct_count() {
            return false;
        }
        let mut others = other.elems.iter();
        'next: for (value, mult) in self.elems.iter() {
            for (ov, om) in others.by_ref() {
                match ov.cmp(value) {
                    Ordering::Less => continue,
                    Ordering::Equal => {
                        if om >= mult {
                            continue 'next;
                        }
                        return false;
                    }
                    Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    // ----- basic bag operations (Section 3) -----

    /// Additive union `B ∪⁺ B′`: multiplicities add (`n = p + q`). A
    /// linear two-pointer merge.
    pub fn additive_union(&self, other: &Bag) -> Bag {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        if Arc::ptr_eq(&self.elems, &other.elems) {
            return self.scale(&Natural::from(2u64));
        }
        Bag::from_sorted_vec(merge_sorted_pairs(
            self.elems.iter().cloned(),
            other.elems.iter().cloned(),
            |mut x, y| {
                x += &y;
                x
            },
        ))
    }

    /// Subtraction `B − B′`: monus on multiplicities (`n = sup(0, p − q)`).
    pub fn subtract(&self, other: &Bag) -> Bag {
        if other.is_empty() {
            return self.clone();
        }
        if Arc::ptr_eq(&self.elems, &other.elems) {
            return Bag::new();
        }
        let mut out = Vec::with_capacity(self.elems.len());
        let mut others = other.elems.iter().peekable();
        for (value, mult) in self.elems.iter() {
            while let Some((ov, _)) = others.peek() {
                if *ov < *value {
                    others.next();
                } else {
                    break;
                }
            }
            match others.peek() {
                Some((ov, om)) if *ov == *value => {
                    let rem = mult.monus(om);
                    if !rem.is_zero() {
                        out.push((value.clone(), rem));
                    }
                    others.next();
                }
                _ => out.push((value.clone(), mult.clone())),
            }
        }
        Bag::from_sorted_vec(out)
    }

    /// Maximal union `B ∪ B′`: `n = sup(p, q)`.
    pub fn max_union(&self, other: &Bag) -> Bag {
        if self.is_empty() || Arc::ptr_eq(&self.elems, &other.elems) {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        Bag::from_sorted_vec(merge_sorted_pairs(
            self.elems.iter().cloned(),
            other.elems.iter().cloned(),
            |x, y| x.max(y),
        ))
    }

    /// Intersection `B ∩ B′`: `n = inf(p, q)`.
    ///
    /// Symmetric, and absent elements have multiplicity zero, so only the
    /// side with fewer distinct elements is walked: when the sizes are
    /// close this is a two-pointer merge; when one side is much smaller it
    /// binary-searches the big side over a shrinking suffix.
    pub fn intersect(&self, other: &Bag) -> Bag {
        if Arc::ptr_eq(&self.elems, &other.elems) {
            return self.clone();
        }
        let (small, big) = if self.distinct_count() <= other.distinct_count() {
            (self, other)
        } else {
            (other, self)
        };
        if small.is_empty() {
            return Bag::new();
        }
        let mut out = Vec::with_capacity(small.elems.len());
        if small.elems.len() * 16 < big.elems.len() {
            let mut lo = 0usize;
            for (value, mult) in small.elems.iter() {
                match big.elems[lo..].binary_search_by(|probe| probe.0.cmp(value)) {
                    Ok(ix) => {
                        out.push((value.clone(), mult.min(&big.elems[lo + ix].1).clone()));
                        lo += ix + 1;
                    }
                    Err(ix) => lo += ix,
                }
            }
        } else {
            let mut bigs = big.elems.iter().peekable();
            for (value, mult) in small.elems.iter() {
                while let Some((bv, _)) = bigs.peek() {
                    if *bv < *value {
                        bigs.next();
                    } else {
                        break;
                    }
                }
                if let Some((bv, bm)) = bigs.peek() {
                    if *bv == *value {
                        out.push((value.clone(), mult.min(bm).clone()));
                        bigs.next();
                    }
                }
            }
        }
        Bag::from_sorted_vec(out)
    }

    /// Duplicate elimination `ε(B)`: each element of `B` 1-belongs to the
    /// result. Already-duplicate-free bags are shared, not copied.
    pub fn dedup(&self) -> Bag {
        if self.elems.iter().all(|(_, m)| m.is_one()) {
            return self.clone();
        }
        Bag::from_sorted_vec(
            self.elems
                .iter()
                .map(|(value, _)| (value.clone(), Natural::one()))
                .collect(),
        )
    }

    /// Scale every multiplicity by `factor` (used by `δ` on nested bags
    /// with duplicated inner bags).
    pub fn scale(&self, factor: &Natural) -> Bag {
        if factor.is_zero() {
            return Bag::new();
        }
        if factor.is_one() {
            return self.clone();
        }
        Bag::from_sorted_vec(
            self.elems
                .iter()
                .map(|(value, mult)| (value.clone(), mult * factor))
                .collect(),
        )
    }

    // ----- constructive operations -----

    /// Cartesian product `B × B′` on bags of tuples: tuples concatenate and
    /// multiplicities multiply (`n = p·q`). The distinct-element budget is
    /// enforced *inside* the loop, so an over-budget product reports
    /// [`BagError::TooLarge`] without ever materializing the full
    /// `|B|·|B′|` intermediate.
    ///
    /// When every left element has the same arity the concatenated tuples
    /// inherit the operands' order, so the output is emitted already
    /// sorted and duplicate-free; mixed left arities fall back to a
    /// [`BagBuilder`] (concatenations can collide, merging multiplicities).
    pub fn product(&self, other: &Bag, max_elements: u64) -> Result<Bag, BagError> {
        if self.is_empty() {
            return Ok(Bag::new());
        }
        let mut left_arity: Option<usize> = None;
        let mut uniform = true;
        for (value, _) in self.elems.iter() {
            let fields = value
                .as_tuple()
                .ok_or_else(|| BagError::NotATuple(value.clone()))?;
            match left_arity {
                None => left_arity = Some(fields.len()),
                Some(a) if a == fields.len() => {}
                Some(_) => uniform = false,
            }
        }
        let predicted = || {
            &Natural::from(self.distinct_count() as u64)
                * &Natural::from(other.distinct_count() as u64)
        };
        if uniform {
            let cap = (self.elems.len() as u128 * other.elems.len() as u128)
                .min(max_elements as u128) as usize;
            let mut out: Vec<(Value, Natural)> = Vec::with_capacity(cap);
            for (left, lm) in self.elems.iter() {
                let left_fields = left.as_tuple().expect("scanned above");
                for (right, rm) in other.elems.iter() {
                    let right_fields = right
                        .as_tuple()
                        .ok_or_else(|| BagError::NotATuple(right.clone()))?;
                    if out.len() as u64 >= max_elements {
                        return Err(BagError::TooLarge {
                            predicted: predicted(),
                            limit: max_elements,
                        });
                    }
                    out.push((Value::concat_tuples(left_fields, right_fields), lm * rm));
                }
            }
            Ok(Bag::from_sorted_vec(out))
        } else {
            let mut out = BagBuilder::new();
            for (left, lm) in self.elems.iter() {
                let left_fields = left.as_tuple().expect("scanned above");
                for (right, rm) in other.elems.iter() {
                    let right_fields = right
                        .as_tuple()
                        .ok_or_else(|| BagError::NotATuple(right.clone()))?;
                    out.push(Value::concat_tuples(left_fields, right_fields), lm * rm);
                    if out.ensure_distinct_within(max_elements).is_err() {
                        return Err(BagError::TooLarge {
                            predicted: predicted(),
                            limit: max_elements,
                        });
                    }
                }
            }
            Ok(out.build())
        }
    }

    /// Powerset `P(B) = ⟦b | b ⊑ B⟧`: one occurrence of **each distinct
    /// subbag** of `B`. There are exactly `Π (mᵢ + 1)` of them. Because
    /// that count explodes, callers pass an element budget and receive
    /// [`BagError::TooLarge`] when the exact predicted count exceeds it.
    pub fn powerset(&self, max_elements: u64) -> Result<Bag, BagError> {
        // Each subbag is bulk-built from the enumeration (the source
        // entries arrive in element order, so the subbag slice is born
        // sorted); the collected output is one sort away from the bag
        // invariant — distinct subbags are enumerated exactly once, so no
        // merge pass is needed. The capacity is clamped to the caller's
        // budget, never trusted from a raw `to_u64` conversion.
        let predicted = self.powerset_cardinality();
        // One distinct element — the paper's integer encoding `⟦a^n⟧`:
        // the n+1 subbags ⟦⟧, ⟦a⟧, …, ⟦a^n⟧ are emitted directly, already
        // in ascending bag order (multiplicities compare last).
        if self.elems.len() == 1 {
            if predicted > Natural::from(max_elements) {
                return Err(BagError::TooLarge {
                    predicted,
                    limit: max_elements,
                });
            }
            let (value, mult) = &self.elems[0];
            let n = mult.to_u64().expect("bounded by the element budget");
            let mut pairs = Vec::with_capacity(n as usize + 1);
            pairs.push((Value::Bag(Bag::new()), Natural::one()));
            for k in 1..=n {
                let sub = Bag::from_sorted_vec(vec![(value.clone(), Natural::from(k))]);
                pairs.push((Value::Bag(sub), Natural::one()));
            }
            return Ok(Bag::from_sorted_vec(pairs));
        }
        let mut pairs = Vec::with_capacity(subbag_capacity(&predicted, max_elements));
        self.for_each_subbag(predicted, max_elements, |entries, counts| {
            pairs.push((Value::Bag(build_subbag(entries, counts)), Natural::one()));
        })?;
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(Bag::from_sorted_vec(pairs))
    }

    /// The exact number of distinct subbags, `Π (mᵢ + 1)` — what
    /// [`Bag::powerset`] would produce. (`n + 1` for the paper's bag of
    /// `n` copies of one constant.)
    pub fn powerset_cardinality(&self) -> Natural {
        let mut total = Natural::one();
        for (_, mult) in self.elems.iter() {
            total *= &mult.succ();
        }
        total
    }

    /// Powerbag `P_b(B)` (Definition 5.1): distinguishes occurrences, so a
    /// subbag choosing `jᵢ` of `mᵢ` duplicates occurs `Π C(mᵢ, jᵢ)` times.
    /// Output cardinality is `2^|B|` (`2ⁿ` for `n` copies of one constant)
    /// while the number of *distinct* elements stays `Π (mᵢ + 1)`.
    pub fn powerbag(&self, max_elements: u64) -> Result<Bag, BagError> {
        let predicted = self.powerset_cardinality();
        let mut pairs = Vec::with_capacity(subbag_capacity(&predicted, max_elements));
        self.for_each_subbag(predicted, max_elements, |entries, counts| {
            let mut weight = Natural::one();
            for ((_, mult), &count) in entries.iter().zip(counts) {
                weight *= &Natural::binomial(mult, count);
            }
            pairs.push((Value::Bag(build_subbag(entries, counts)), weight));
        })?;
        pairs.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Ok(Bag::from_sorted_vec(pairs))
    }

    /// The exact total cardinality of `P_b(B)`, namely `2^|B|`.
    ///
    /// When `|B| > u64::MAX` the value `2^|B|` is not representable (its
    /// limb vector alone would need ≥ 2^58 entries), so instead of
    /// attempting the allocation this reports [`BagError::TooLarge`] with
    /// the exact cardinality that overflowed.
    pub fn powerbag_cardinality(&self) -> Result<Natural, BagError> {
        let card = self.cardinality();
        match card.to_u64() {
            Some(n) => Ok(Natural::pow2(n)),
            None => Err(BagError::TooLarge {
                predicted: card,
                limit: u64::MAX,
            }),
        }
    }

    /// Bag-destroy `δ(B)` on a bag of bags:
    /// `δ(⟦x₁, …, xₙ⟧) = x₁ ∪⁺ ⋯ ∪⁺ xₙ` with duplicated inner bags
    /// contributing once per occurrence.
    pub fn destroy(&self) -> Result<Bag, BagError> {
        // δ(⟦x⟧) = x: share the inner bag instead of rebuilding it.
        if self.distinct_count() == 1 {
            let (value, mult) = self.elems.first().expect("one element");
            let inner = value
                .as_bag()
                .ok_or_else(|| BagError::NotABag(value.clone()))?;
            return Ok(if mult.is_one() {
                inner.clone()
            } else {
                inner.scale(mult)
            });
        }
        let mut out = BagBuilder::new();
        for (value, mult) in self.elems.iter() {
            let inner = value
                .as_bag()
                .ok_or_else(|| BagError::NotABag(value.clone()))?;
            for (elem, inner_mult) in inner.iter() {
                out.push(elem.clone(), inner_mult * mult);
            }
        }
        Ok(out.build())
    }

    // ----- filters -----

    /// Restructuring `MAP_φ(B)`: applies `φ` to every member; images
    /// accumulate multiplicities (`n = n₁ + ⋯ + n_l` over the preimages).
    pub fn map<E>(&self, mut f: impl FnMut(&Value) -> Result<Value, E>) -> Result<Bag, E> {
        let mut out = BagBuilder::new();
        for (value, mult) in self.elems.iter() {
            out.push(f(value)?, mult.clone());
        }
        Ok(out.build())
    }

    /// Selection `σ(B)`: keeps elements satisfying the predicate with their
    /// multiplicities. The output is a subsequence of the sorted slice, so
    /// it is built directly (no re-sorting).
    pub fn select<E>(&self, mut pred: impl FnMut(&Value) -> Result<bool, E>) -> Result<Bag, E> {
        let mut out = Vec::new();
        for (value, mult) in self.elems.iter() {
            if pred(value)? {
                out.push((value.clone(), mult.clone()));
            }
        }
        Ok(Bag::from_sorted_vec(out))
    }

    /// Projection helper `π_{i₁,…,iₙ}` over 1-based attribute indices —
    /// the paper's abbreviation for `MAP_{λx.[α_{i₁}(x), …]}`.
    pub fn project(&self, indices: &[usize]) -> Result<Bag, BagError> {
        self.map(|value| {
            let fields = value
                .as_tuple()
                .ok_or_else(|| BagError::NotATuple(value.clone()))?;
            let mut out = Vec::with_capacity(indices.len());
            for &ix in indices {
                let field = fields.get(ix.checked_sub(1).ok_or(BagError::AttrIndexZero)?);
                out.push(
                    field
                        .ok_or(BagError::BadArity {
                            index: ix,
                            arity: fields.len(),
                        })?
                        .clone(),
                );
            }
            Ok(Value::Tuple(out.into()))
        })
    }

    /// The nest operator of \[PG88\] (Conclusion): group a bag of tuples by
    /// the 1-based attributes in `group`; each distinct group key appears
    /// **once**, extended with a bag holding the residual-attribute tuples
    /// of its members (inner multiplicities preserved).
    pub fn nest(&self, group: &[usize]) -> Result<Bag, BagError> {
        use std::collections::BTreeMap;
        // Membership bitmask over 1-based attribute positions, precomputed
        // so the residual split is O(arity) per row instead of
        // O(arity × |group|). Fixed-size (no allocation keyed to attacker-
        // controlled indices); positions beyond the mask — which only
        // matter for equally wide rows — fall back to the linear scan.
        let mut mask = 0u128;
        for &ix in group {
            if (1..=128).contains(&ix) {
                mask |= 1 << (ix - 1);
            }
        }
        let grouped = |i: usize| -> bool {
            if i < 128 {
                mask >> i & 1 == 1
            } else {
                group.contains(&(i + 1))
            }
        };
        let mut groups: BTreeMap<Vec<Value>, BagBuilder> = BTreeMap::new();
        for (row, mult) in self.elems.iter() {
            let fields = row
                .as_tuple()
                .ok_or_else(|| BagError::NotATuple(row.clone()))?;
            let mut key = Vec::with_capacity(group.len());
            for &ix in group {
                let i = ix.checked_sub(1).ok_or(BagError::AttrIndexZero)?;
                let field = fields.get(i).ok_or(BagError::BadArity {
                    index: ix,
                    arity: fields.len(),
                })?;
                key.push(field.clone());
            }
            let residual: Vec<Value> = fields
                .iter()
                .enumerate()
                .filter(|(i, _)| !grouped(*i))
                .map(|(_, v)| v.clone())
                .collect();
            groups
                .entry(key)
                .or_default()
                .push(Value::Tuple(residual.into()), mult.clone());
        }
        // Group keys come out of the map in ascending order; the output
        // tuples all share one arity and differ within the key prefix, so
        // they are emitted already sorted and distinct.
        let mut out = Vec::with_capacity(groups.len());
        for (key, inner) in groups {
            let mut fields = key;
            fields.push(Value::Bag(inner.build()));
            out.push((Value::Tuple(fields.into()), Natural::one()));
        }
        Ok(Bag::from_sorted_vec(out))
    }

    /// Shared subbag enumeration for `P` and `P_b`: calls `f` once per
    /// distinct subbag with the source entries (in element order) and the
    /// occurrence counts the subbag takes of each. Streaming — the
    /// `Π(mᵢ+1)` choices are never buffered, so the only allocation is the
    /// one `counts` odometer, sized exactly to the distinct-element count
    /// (no cardinality-derived capacity guesses).
    /// `predicted` is the caller-computed [`Bag::powerset_cardinality`]
    /// (shared with the allocation hint so it is only computed once).
    fn for_each_subbag(
        &self,
        predicted: Natural,
        max_elements: u64,
        mut f: impl FnMut(&[(&Value, &Natural)], &[u64]),
    ) -> Result<(), BagError> {
        debug_assert_eq!(predicted, self.powerset_cardinality());
        if predicted > Natural::from(max_elements) {
            return Err(BagError::TooLarge {
                predicted,
                limit: max_elements,
            });
        }
        let entries: Vec<(&Value, &Natural)> = self.iter().collect();
        // Since Π(mᵢ+1) ≤ max_elements (a u64), every mᵢ fits in u64.
        let bounds: Vec<u64> = entries
            .iter()
            .map(|(_, m)| m.to_u64().expect("bounded by predicted cardinality"))
            .collect();
        let mut current = vec![0u64; bounds.len()];
        loop {
            f(&entries, &current);
            // Odometer increment over 0..=bounds[i].
            let mut pos = 0;
            loop {
                if pos == bounds.len() {
                    return Ok(());
                }
                if current[pos] < bounds[pos] {
                    current[pos] += 1;
                    break;
                }
                current[pos] = 0;
                pos += 1;
            }
        }
    }
}

/// Allocation hint for subbag enumeration: the predicted distinct count
/// when it fits, clamped by the element budget (never trusted raw).
pub(crate) fn subbag_capacity(predicted: &Natural, max_elements: u64) -> usize {
    predicted.to_u64().map_or(0, |n| n.min(max_elements)) as usize
}

/// Materialize one subbag choice: `counts[i]` occurrences of the `i`-th
/// source entry. The source entries arrive in element order, so the pair
/// vector is born satisfying the bag invariant — no per-subbag tree or
/// sort, just a filtered copy.
pub(crate) fn build_subbag(entries: &[(&Value, &Natural)], counts: &[u64]) -> Bag {
    let mut pairs = Vec::with_capacity(counts.iter().filter(|&&c| c > 0).count());
    for ((value, _), &count) in entries.iter().zip(counts) {
        if count > 0 {
            pairs.push(((*value).clone(), Natural::from(count)));
        }
    }
    Bag::from_sorted_vec(pairs)
}

/// The multiplicity interface shared by the ℕ-valued [`Bag`] machinery and
/// the ℤ-valued [`crate::zbag::ZBag`] delta machinery: the merge and the
/// builder below are generic over it, so both number systems run through
/// one implementation of the two-pointer merge and the overflow-buffer
/// accumulation strategy.
pub(crate) trait Multiplicity: Clone {
    /// Whether accumulating two nonzero values can produce zero. `false`
    /// for ℕ (addition only grows), `true` for ℤ (cancellation) — lets
    /// the shared machinery skip zero-filtering scans entirely on the ℕ
    /// hot paths.
    const CAN_CANCEL: bool;
    /// `true` iff this is the additive identity (such entries are dropped).
    fn is_zero(&self) -> bool;
    /// `self += other` in the multiplicity's own arithmetic.
    fn accumulate(&mut self, other: &Self);
}

impl Multiplicity for Natural {
    const CAN_CANCEL: bool = false;

    fn is_zero(&self) -> bool {
        Natural::is_zero(self)
    }

    fn accumulate(&mut self, other: &Natural) {
        *self += other;
    }
}

/// Two-pointer merge of two sorted pair slices: keys present on one side
/// pass through, keys present on both are combined with `combine`; zero
/// results are dropped (for ℕ combiners like `+` and `sup` that never
/// happens, for ℤ addition it is how cancellation disappears). The shared
/// skeleton of `∪⁺`, `∪`, the builders' compaction, and the `ZBag` group
/// operations.
pub(crate) fn merge_sorted_pairs<M: Multiplicity>(
    a: impl IntoIterator<Item = (Value, M)>,
    b: impl IntoIterator<Item = (Value, M)>,
    mut combine: impl FnMut(M, M) -> M,
) -> Vec<(Value, M)> {
    let (mut a, mut b) = (a.into_iter().peekable(), b.into_iter().peekable());
    let mut out = Vec::with_capacity(a.size_hint().0 + b.size_hint().0);
    loop {
        match (a.peek(), b.peek()) {
            (Some((av, _)), Some((bv, _))) => match av.cmp(bv) {
                Ordering::Less => out.push(a.next().expect("peeked")),
                Ordering::Greater => out.push(b.next().expect("peeked")),
                Ordering::Equal => {
                    let (value, am) = a.next().expect("peeked");
                    let (_, bm) = b.next().expect("peeked");
                    let combined = combine(am, bm);
                    if !M::CAN_CANCEL || !combined.is_zero() {
                        out.push((value, combined));
                    }
                }
            },
            (Some(_), None) => {
                out.extend(a);
                break;
            }
            (None, Some(_)) => {
                out.extend(b);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

/// The generic accumulation core of [`BagBuilder`] (and of the ℤ-valued
/// `ZBagBuilder`): a sorted prefix plus a small unsorted overflow buffer
/// bulk-merged on demand.
///
/// Signed multiplicities can cancel to zero in place; zeroed entries are
/// left where they sit (keys stay ascending) and filtered during
/// compaction, so [`PairBuffer::ensure_distinct_within`] remains exact
/// after a compact.
#[derive(Default)]
pub(crate) struct PairBuffer<M: Multiplicity> {
    /// Ascending keys — a valid prefix, except that signed accumulation
    /// may have zeroed some entries in place (filtered on compact).
    sorted: Vec<(Value, M)>,
    /// Unordered overflow of keys that were new and out-of-order when
    /// pushed. May contain internal duplicates; disjoint from `sorted`
    /// only at push time.
    pending: Vec<(Value, M)>,
}

impl<M: Multiplicity> PairBuffer<M> {
    /// Minimum overflow size before a bulk merge.
    const COMPACT_MIN: usize = 32;

    pub(crate) fn with_capacity(cap: usize) -> Self {
        PairBuffer {
            sorted: Vec::with_capacity(cap),
            pending: Vec::new(),
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        if !M::CAN_CANCEL {
            return self.sorted.is_empty() && self.pending.is_empty();
        }
        // Cancelling multiplicities can zero entries in place, so vector
        // emptiness alone under-reports emptiness.
        self.sorted
            .iter()
            .chain(self.pending.iter())
            .all(|(_, m)| m.is_zero())
    }

    pub(crate) fn push(&mut self, value: Value, mult: M) {
        if mult.is_zero() {
            return;
        }
        match self.sorted.last_mut() {
            None => {
                self.sorted.push((value, mult));
                return;
            }
            Some(last) => match last.0.cmp(&value) {
                Ordering::Less => {
                    self.sorted.push((value, mult));
                    return;
                }
                Ordering::Equal => {
                    last.1.accumulate(&mult);
                    return;
                }
                Ordering::Greater => {}
            },
        }
        // Out of order: merging into an existing entry needs no shift.
        if let Ok(ix) = self.sorted.binary_search_by(|probe| probe.0.cmp(&value)) {
            self.sorted[ix].1.accumulate(&mult);
            return;
        }
        self.pending.push((value, mult));
        if self.pending.len() >= Self::COMPACT_MIN.max(self.sorted.len() / 2) {
            self.compact();
        }
    }

    pub(crate) fn distinct_upper_bound(&self) -> usize {
        self.sorted.len() + self.pending.len()
    }

    pub(crate) fn ensure_distinct_within(&mut self, limit: u64) -> Result<(), u64> {
        if (self.sorted.len() + self.pending.len()) as u64 <= limit {
            return Ok(());
        }
        self.compact();
        let observed = self.sorted.len() as u64;
        if observed > limit {
            Err(observed)
        } else {
            Ok(())
        }
    }

    /// Sort the overflow buffer and bulk-merge it into the sorted prefix,
    /// dropping entries that cancelled to zero. The zero-filtering scans
    /// only exist for cancelling multiplicities (ℤ); for ℕ accumulation
    /// cannot produce zeros, so the builder hot paths skip them.
    fn compact(&mut self) {
        if self.pending.is_empty() {
            if M::CAN_CANCEL {
                self.sorted.retain(|(_, m)| !m.is_zero());
            }
            return;
        }
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_by(|a, b| a.0.cmp(&b.0));
        // Collapse duplicate keys within the overflow.
        let mut merged: Vec<(Value, M)> = Vec::with_capacity(pending.len());
        for (value, mult) in pending {
            match merged.last_mut() {
                Some(last) if last.0 == value => last.1.accumulate(&mult),
                _ => merged.push((value, mult)),
            }
        }
        let mut old = std::mem::take(&mut self.sorted);
        if M::CAN_CANCEL {
            merged.retain(|(_, m)| !m.is_zero());
            old.retain(|(_, m)| !m.is_zero());
        }
        self.sorted = merge_sorted_pairs(old, merged, |mut x, y| {
            x.accumulate(&y);
            x
        });
    }

    /// Finish into the canonical sorted pair vector (ascending keys, no
    /// zeros).
    pub(crate) fn into_sorted(mut self) -> Vec<(Value, M)> {
        self.compact();
        self.sorted
    }
}

/// An accumulator for building a [`Bag`] by repeated insertion in
/// arbitrary order.
///
/// In-order insertions (each key ≥ the current maximum) append directly.
/// Out-of-order insertions first try to merge into an existing entry by
/// binary search (no shifting); genuinely new out-of-order keys land in a
/// small unsorted overflow buffer that is sorted and bulk-merged once it
/// grows past a fraction of the sorted prefix — `O(log n)` amortized per
/// insertion instead of the `O(n)` memmove a sorted `Vec` would pay.
///
/// The element budget of resource-limited evaluation is enforceable
/// mid-build via [`BagBuilder::ensure_distinct_within`], which is exact
/// whenever it matters: the distinct count can only exceed the budget if
/// `sorted + overflow` does, and that triggers a compaction.
#[derive(Default)]
pub struct BagBuilder {
    buffer: PairBuffer<Natural>,
}

impl BagBuilder {
    /// An empty builder.
    pub fn new() -> BagBuilder {
        BagBuilder::default()
    }

    /// An empty builder with room for `cap` in-order insertions.
    pub fn with_capacity(cap: usize) -> BagBuilder {
        BagBuilder {
            buffer: PairBuffer::with_capacity(cap),
        }
    }

    /// `true` iff nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// Add one occurrence of `value`.
    pub fn push_one(&mut self, value: Value) {
        self.push(value, Natural::one());
    }

    /// Add `mult` occurrences of `value` (no-op when `mult` is zero).
    pub fn push(&mut self, value: Value, mult: Natural) {
        self.buffer.push(value, mult);
    }

    /// An upper bound on the number of distinct elements pushed so far
    /// (exact when the overflow buffer is empty).
    pub fn distinct_upper_bound(&self) -> usize {
        self.buffer.distinct_upper_bound()
    }

    /// Enforce a distinct-element budget mid-build: `Err(observed)` with
    /// the exact distinct count as soon as it exceeds `limit`. Cheap when
    /// comfortably under budget (two integer adds); compacts the overflow
    /// buffer only when the upper bound crosses the limit.
    pub fn ensure_distinct_within(&mut self, limit: u64) -> Result<(), u64> {
        self.buffer.ensure_distinct_within(limit)
    }

    /// Finish into a [`Bag`].
    pub fn build(self) -> Bag {
        let bag = Bag::from_sorted_vec(self.buffer.into_sorted());
        debug_assert!(bag.debug_validate(), "builder broke the bag invariant");
        bag
    }

    /// Finish into a duplicate-free [`Bag`] (every multiplicity clamped to
    /// one) — the set-semantics variant the RALG layer builds with.
    pub fn build_set(self) -> Bag {
        let mut sorted = self.buffer.into_sorted();
        for pair in &mut sorted {
            if !pair.1.is_one() {
                pair.1 = Natural::one();
            }
        }
        let bag = Bag::from_sorted_vec(sorted);
        debug_assert!(bag.debug_validate(), "builder broke the bag invariant");
        bag
    }
}

impl FromIterator<Value> for Bag {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Bag::from_values(iter)
    }
}

#[cfg(feature = "serde")]
mod serde_impls {
    //! The pair slice serializes as a sequence of `(value, multiplicity)`
    //! pairs; deserialization rebuilds through [`Bag::from_counted`], so
    //! foreign input cannot violate the sorted-slice invariant.
    use super::*;

    impl serde::Serialize for Bag {
        fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
            serializer.collect_seq(self.elems.iter())
        }
    }

    impl<'de> serde::Deserialize<'de> for Bag {
        fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Bag, D::Error> {
            Vec::<(Value, Natural)>::deserialize(deserializer).map(Bag::from_counted)
        }
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{{")?;
        let mut first = true;
        for (value, mult) in self.elems.iter() {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            if mult.is_one() {
                write!(f, "{value}")?;
            } else {
                write!(f, "{value}^{mult}")?;
            }
        }
        f.write_str("}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sym(s: &str) -> Value {
        Value::sym(s)
    }

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    fn bag_of(pairs: &[(&str, u64)]) -> Bag {
        Bag::from_counted(pairs.iter().map(|(s, m)| (sym(s), nat(*m))))
    }

    /// The representation invariant: strictly ascending keys, no zeros.
    fn assert_invariant(bag: &Bag) {
        let pairs: Vec<_> = bag.iter().collect();
        assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(pairs.iter().all(|(_, m)| !m.is_zero()));
    }

    #[test]
    fn multiplicity_arithmetic_of_the_four_unions() {
        let b1 = bag_of(&[("a", 3), ("b", 1)]);
        let b2 = bag_of(&[("a", 2), ("c", 5)]);
        let add = b1.additive_union(&b2);
        assert_eq!(add.multiplicity(&sym("a")), nat(5));
        assert_eq!(add.multiplicity(&sym("b")), nat(1));
        assert_eq!(add.multiplicity(&sym("c")), nat(5));
        let sub = b1.subtract(&b2);
        assert_eq!(sub.multiplicity(&sym("a")), nat(1));
        assert_eq!(sub.multiplicity(&sym("b")), nat(1));
        assert!(!sub.contains(&sym("c"))); // sup(0, 0-5) = 0
        let max = b1.max_union(&b2);
        assert_eq!(max.multiplicity(&sym("a")), nat(3));
        assert_eq!(max.multiplicity(&sym("c")), nat(5));
        let int = b1.intersect(&b2);
        assert_eq!(int.multiplicity(&sym("a")), nat(2));
        assert!(!int.contains(&sym("b")));
        assert!(!int.contains(&sym("c")));
        for bag in [add, sub, max, int] {
            assert_invariant(&bag);
        }
    }

    #[test]
    fn zero_multiplicities_never_stored() {
        let b1 = bag_of(&[("a", 2)]);
        let b2 = bag_of(&[("a", 2)]);
        let diff = b1.subtract(&b2);
        assert!(diff.is_empty());
        assert_eq!(diff, Bag::new());
    }

    #[test]
    fn out_of_order_insertion_restores_the_invariant() {
        let mut bag = Bag::new();
        for s in ["m", "c", "z", "c", "a", "m"] {
            bag.insert(sym(s));
        }
        assert_invariant(&bag);
        assert_eq!(bag.distinct_count(), 4);
        assert_eq!(bag.multiplicity(&sym("c")), nat(2));
        let ordered: Vec<_> = bag.elements().cloned().collect();
        assert_eq!(ordered, vec![sym("a"), sym("c"), sym("m"), sym("z")]);
    }

    #[test]
    fn builder_matches_incremental_insertion() {
        let values = ["q", "a", "f", "a", "z", "f", "f", "b"];
        let mut builder = BagBuilder::new();
        let mut reference = Bag::new();
        for v in values {
            builder.push_one(sym(v));
            reference.insert(sym(v));
        }
        let built = builder.build();
        assert_eq!(built, reference);
        assert_invariant(&built);
    }

    #[test]
    fn builder_budget_is_enforced_incrementally() {
        let mut builder = BagBuilder::new();
        for i in (0..100i64).rev() {
            builder.push_one(Value::int(i));
            if builder.ensure_distinct_within(10).is_err() {
                return; // over budget exactly as distinct count crossed 10
            }
        }
        panic!("100 distinct values never tripped a budget of 10");
    }

    #[test]
    fn product_multiplies_multiplicities() {
        // The Section 4 counting technique: B with n×[a,b] and m×[b,a].
        let n = 4u64;
        let m = 3u64;
        let mut b = Bag::new();
        b.insert_with_multiplicity(Value::tuple([sym("a"), sym("b")]), nat(n));
        b.insert_with_multiplicity(Value::tuple([sym("b"), sym("a")]), nat(m));
        let prod = b.product(&b, u64::MAX).unwrap();
        let abab = Value::tuple([sym("a"), sym("b"), sym("a"), sym("b")]);
        let baab = Value::tuple([sym("b"), sym("a"), sym("a"), sym("b")]);
        assert_eq!(prod.multiplicity(&abab), nat(n * n));
        assert_eq!(prod.multiplicity(&baab), nat(m * n));
        assert_eq!(prod.cardinality(), nat((n + m) * (n + m)));
        assert_invariant(&prod);
    }

    #[test]
    fn product_rejects_non_tuples() {
        let b = Bag::singleton(sym("a"));
        assert!(matches!(
            b.product(&b, u64::MAX),
            Err(BagError::NotATuple(_))
        ));
    }

    #[test]
    fn product_budget_enforced_without_materializing() {
        // Regression for the unbounded-intermediate bug: the full |B|·|B′|
        // cross product must never be built when the budget is tiny.
        let b = Bag::from_values((0..1000i64).map(|i| Value::tuple([Value::int(i)])));
        match b.product(&b, 50) {
            Err(BagError::TooLarge { predicted, limit }) => {
                assert_eq!(predicted, nat(1_000_000));
                assert_eq!(limit, 50);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Mixed left arities take the builder path; same enforcement.
        let mut mixed = Bag::new();
        for i in 0..1000i64 {
            mixed.insert(Value::tuple([Value::int(i)]));
        }
        mixed.insert(Value::tuple([sym("w"), sym("w")]));
        assert!(matches!(
            mixed.product(&b, 50),
            Err(BagError::TooLarge { limit: 50, .. })
        ));
        // Within budget both paths still succeed exactly.
        let small = Bag::from_values((0..3i64).map(|i| Value::tuple([Value::int(i)])));
        assert_eq!(small.product(&small, 9).unwrap().distinct_count(), 9);
        assert!(small.product(&small, 8).is_err());
    }

    #[test]
    fn product_with_mixed_arities_merges_collisions() {
        // [a]×[b,c] and [a,b]×[c] concatenate to the same triple, so the
        // builder path must merge their multiplicities.
        let left = Bag::from_counted([
            (Value::tuple([sym("a")]), nat(2)),
            (Value::tuple([sym("a"), sym("b")]), nat(3)),
        ]);
        let right = Bag::from_counted([
            (Value::tuple([sym("b"), sym("c")]), nat(1)),
            (Value::tuple([sym("c")]), nat(1)),
        ]);
        let prod = left.product(&right, u64::MAX).unwrap();
        let triple = Value::tuple([sym("a"), sym("b"), sym("c")]);
        assert_eq!(prod.multiplicity(&triple), nat(2 + 3));
        assert_invariant(&prod);
    }

    #[test]
    fn powerset_of_n_copies_has_n_plus_1_elements() {
        // Introduction: "the powerbag of a bag containing n occurrences of a
        // single constant has cardinality 2^n, while its powerset has
        // cardinality n+1."
        for n in 0u64..6 {
            let b = Bag::repeated(sym("a"), n);
            let ps = b.powerset(1 << 20).unwrap();
            assert_eq!(ps.cardinality(), nat(n + 1));
            assert_eq!(b.powerset_cardinality(), nat(n + 1));
            let pb = b.powerbag(1 << 20).unwrap();
            assert_eq!(pb.cardinality(), Natural::pow2(n));
            assert_eq!(b.powerbag_cardinality().unwrap(), Natural::pow2(n));
            assert_invariant(&ps);
            assert_invariant(&pb);
        }
    }

    #[test]
    fn powerset_elements_are_exactly_the_subbags() {
        let b = bag_of(&[("a", 2), ("b", 1)]);
        let ps = b.powerset(1 << 20).unwrap();
        assert_eq!(ps.cardinality(), nat(6)); // (2+1)(1+1)
        for (sub, mult) in ps.iter() {
            assert!(mult.is_one());
            assert!(sub.as_bag().unwrap().is_subbag_of(&b));
        }
        // Every subbag present.
        assert!(ps.contains(&Value::Bag(Bag::new())));
        assert!(ps.contains(&Value::Bag(b)));
        assert!(ps.contains(&Value::Bag(bag_of(&[("a", 1), ("b", 1)]))));
    }

    #[test]
    fn powerbag_matches_definition_5_1_example() {
        // P_b(⟦a,a⟧) = ⟦⟦⟧, ⟦a⟧, ⟦a⟧, ⟦a,a⟧⟧ vs P(⟦a,a⟧) = ⟦⟦⟧, ⟦a⟧, ⟦a,a⟧⟧.
        let b = Bag::repeated(sym("a"), 2u64);
        let pb = b.powerbag(100).unwrap();
        assert_eq!(pb.multiplicity(&Value::Bag(Bag::new())), nat(1));
        assert_eq!(
            pb.multiplicity(&Value::Bag(Bag::repeated(sym("a"), 1u64))),
            nat(2)
        );
        assert_eq!(pb.multiplicity(&Value::Bag(b.clone())), nat(1));
        let ps = b.powerset(100).unwrap();
        assert_eq!(
            ps.multiplicity(&Value::Bag(Bag::repeated(sym("a"), 1u64))),
            nat(1)
        );
    }

    #[test]
    fn powerbag_cardinality_rejects_unrepresentable_exponent() {
        // |B| = 2^70 > u64::MAX: 2^|B| would need a ~2^64-limb vector, so
        // the prediction must refuse instead of attempting the allocation.
        let huge = Bag::repeated(sym("a"), Natural::pow2(70));
        match huge.powerbag_cardinality() {
            Err(BagError::TooLarge { predicted, .. }) => {
                assert_eq!(predicted, Natural::pow2(70));
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        // Representable sizes still compute exactly.
        assert_eq!(
            Bag::repeated(sym("a"), 10u64)
                .powerbag_cardinality()
                .unwrap(),
            Natural::pow2(10)
        );
    }

    #[test]
    fn powerset_respects_budget() {
        let b = Bag::repeated(sym("a"), 1_000_000u64);
        let err = b.powerset(1000).unwrap_err();
        match err {
            BagError::TooLarge { predicted, limit } => {
                assert_eq!(predicted, nat(1_000_001));
                assert_eq!(limit, 1000);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn destroy_sums_inner_bags_scaled_by_outer_multiplicity() {
        // δ(⟦⟦a,a⟧, ⟦a,b⟧²⟧) = ⟦a⁴, b²⟧
        let inner1 = bag_of(&[("a", 2)]);
        let inner2 = bag_of(&[("a", 1), ("b", 1)]);
        let mut outer = Bag::new();
        outer.insert(Value::Bag(inner1));
        outer.insert_with_multiplicity(Value::Bag(inner2), nat(2));
        let flat = outer.destroy().unwrap();
        assert_eq!(flat.multiplicity(&sym("a")), nat(4));
        assert_eq!(flat.multiplicity(&sym("b")), nat(2));
        assert_invariant(&flat);
    }

    #[test]
    fn destroy_rejects_non_bags() {
        let b = Bag::singleton(sym("a"));
        assert!(matches!(b.destroy(), Err(BagError::NotABag(_))));
    }

    #[test]
    fn map_accumulates_preimage_multiplicities() {
        // MAP_{λx.β(x)}(⟦a,a,b⟧) = ⟦⟦a⟧,⟦a⟧,⟦b⟧⟧ — i.e. ⟦a⟧ has mult 2.
        let b = bag_of(&[("a", 2), ("b", 1)]);
        let mapped: Bag = b
            .map(|v| Ok::<_, std::convert::Infallible>(Value::Bag(Bag::singleton(v.clone()))))
            .unwrap();
        assert_eq!(
            mapped.multiplicity(&Value::Bag(Bag::singleton(sym("a")))),
            nat(2)
        );
        // Collapsing map: everything to one constant sums all multiplicities.
        let collapsed: Bag = b
            .map(|_| Ok::<_, std::convert::Infallible>(sym("z")))
            .unwrap();
        assert_eq!(collapsed.multiplicity(&sym("z")), nat(3));
    }

    #[test]
    fn select_preserves_multiplicities() {
        let b = bag_of(&[("a", 2), ("b", 5)]);
        let picked = b
            .select(|v| Ok::<_, std::convert::Infallible>(*v == sym("b")))
            .unwrap();
        assert_eq!(picked.multiplicity(&sym("b")), nat(5));
        assert_eq!(picked.distinct_count(), 1);
    }

    #[test]
    fn dedup_keeps_one_of_each_and_shares_when_clean() {
        let b = bag_of(&[("a", 7), ("b", 2)]);
        let d = b.dedup();
        assert_eq!(d.multiplicity(&sym("a")), nat(1));
        assert_eq!(d.multiplicity(&sym("b")), nat(1));
        assert_eq!(d.cardinality(), nat(2));
        let dd = d.dedup();
        assert_eq!(dd, d); // idempotent
        assert!(Arc::ptr_eq(&dd.elems, &d.elems)); // and shared, not copied
    }

    #[test]
    fn nest_rejects_huge_attribute_index_without_allocating() {
        // A hostile 1-based index must produce BadArity (or an empty
        // result on an empty bag), never an index-sized allocation.
        let mut b = Bag::new();
        b.insert(Value::tuple([sym("x"), sym("y")]));
        assert!(matches!(
            b.nest(&[1_000_000_000_000]),
            Err(BagError::BadArity { .. })
        ));
        assert!(Bag::new().nest(&[1_000_000_000_000]).unwrap().is_empty());
        // Group indices past the u128 mask still split correctly when the
        // rows are wide enough.
        let wide = Bag::from_values([Value::tuple((0..130).map(Value::int))]);
        let nested = wide.nest(&[130]).unwrap();
        let (row, _) = nested.iter().next().unwrap();
        let fields = row.as_tuple().unwrap();
        assert_eq!(fields[0], Value::int(129)); // key = attribute 130
        let residual = fields[1].as_bag().unwrap();
        let (res_row, _) = residual.iter().next().unwrap();
        assert_eq!(res_row.as_tuple().unwrap().len(), 129);
    }

    #[test]
    fn project_is_map_composition() {
        let mut b = Bag::new();
        b.insert(Value::tuple([sym("x"), sym("y"), sym("z")]));
        let projected = b.project(&[3, 1]).unwrap();
        assert!(projected.contains(&Value::tuple([sym("z"), sym("x")])));
        assert!(matches!(
            b.project(&[4]),
            Err(BagError::BadArity { index: 4, arity: 3 })
        ));
        assert!(matches!(b.project(&[0]), Err(BagError::AttrIndexZero)));
    }

    #[test]
    fn subbag_partial_order() {
        let small = bag_of(&[("a", 1)]);
        let big = bag_of(&[("a", 3), ("b", 1)]);
        assert!(small.is_subbag_of(&big));
        assert!(!big.is_subbag_of(&small));
        assert!(Bag::new().is_subbag_of(&small));
        assert!(small.is_subbag_of(&small));
        // Interleaved keys exercise the merge walk.
        let sparse = bag_of(&[("b", 1), ("d", 1)]);
        let dense = bag_of(&[("a", 1), ("b", 2), ("c", 9), ("d", 1), ("e", 1)]);
        assert!(sparse.is_subbag_of(&dense));
        assert!(!dense.is_subbag_of(&sparse));
    }

    #[test]
    fn algebraic_laws_on_samples() {
        let b1 = bag_of(&[("a", 3), ("b", 1)]);
        let b2 = bag_of(&[("a", 1), ("c", 2)]);
        let b3 = bag_of(&[("b", 4)]);
        // Commutativity (∪⁺, ∪, ∩) and associativity (∪⁺, ∪, ∩).
        assert_eq!(b1.additive_union(&b2), b2.additive_union(&b1));
        assert_eq!(b1.max_union(&b2), b2.max_union(&b1));
        assert_eq!(b1.intersect(&b2), b2.intersect(&b1));
        assert_eq!(
            b1.additive_union(&b2).additive_union(&b3),
            b1.additive_union(&b2.additive_union(&b3))
        );
        assert_eq!(
            b1.max_union(&b2).max_union(&b3),
            b1.max_union(&b2.max_union(&b3))
        );
        assert_eq!(
            b1.intersect(&b2).intersect(&b3),
            b1.intersect(&b2.intersect(&b3))
        );
        // Self-application fast paths agree with the general merges.
        assert_eq!(
            b1.additive_union(&b1).multiplicity(&sym("a")),
            nat(6) // 3 + 3 via the shared-Arc doubling path
        );
        assert_eq!(b1.max_union(&b1), b1);
        assert_eq!(b1.intersect(&b1), b1);
        assert!(b1.subtract(&b1).is_empty());
    }

    #[test]
    fn asymmetric_intersect_probes_the_big_side() {
        let big = Bag::from_counted((0..4096i64).map(|i| (Value::int(i), nat(i as u64 % 3 + 1))));
        let small = Bag::from_counted([(Value::int(17), nat(9)), (Value::int(4000), nat(1))]);
        let both = big.intersect(&small);
        assert_eq!(both, small.intersect(&big));
        assert_eq!(both.multiplicity(&Value::int(17)), nat(3).min(nat(9)));
        assert_eq!(both.distinct_count(), 2);
    }

    #[test]
    fn display_uses_multiplicity_exponents() {
        let b = bag_of(&[("a", 2), ("b", 1)]);
        assert_eq!(b.to_string(), "{{a^2, b}}");
    }
}
