//! Bags with exact multiplicities and the primitive operations of Section 3.
//!
//! A bag is a finite multiset: a map from distinct elements to positive
//! multiplicities. An element *n-belongs* to a bag if it has exactly `n`
//! occurrences. The operations here are the data-level semantics of the
//! BALG operators; the expression AST in [`crate::expr`] composes them.
//!
//! The counted `BTreeMap` representation is the optimization the paper's
//! Section 3 anticipates ("representing each object in association with the
//! number of its occurrences"); the paper's complexity measure nevertheless
//! charges for the expanded standard encoding, which
//! [`Value::encoded_size`](crate::value::Value::encoded_size) computes.

use std::collections::BTreeMap;
use std::fmt;

use crate::natural::Natural;
use crate::value::Value;

/// An error from a primitive bag operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BagError {
    /// Cartesian product or projection applied to a non-tuple element.
    NotATuple(Value),
    /// Bag-destroy `δ` applied to a bag whose elements are not bags.
    NotABag(Value),
    /// Attribute projection `αᵢ` with an out-of-range index.
    BadArity {
        /// Requested 1-based attribute index.
        index: usize,
        /// Actual tuple arity.
        arity: usize,
    },
    /// Powerset/powerbag output would exceed the caller's element budget.
    /// `predicted` is the exact number of distinct subbags, `Π(mᵢ+1)`.
    TooLarge {
        /// Exact predicted number of distinct output elements.
        predicted: Natural,
        /// The caller-imposed budget.
        limit: u64,
    },
}

impl fmt::Display for BagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BagError::NotATuple(v) => write!(f, "expected a tuple element, got {v}"),
            BagError::NotABag(v) => write!(f, "expected a bag element, got {v}"),
            BagError::BadArity { index, arity } => {
                write!(f, "attribute α{index} out of range for arity {arity}")
            }
            BagError::TooLarge { predicted, limit } => write!(
                f,
                "powerset would produce {predicted} subbags, over the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for BagError {}

/// A homogeneous bag of [`Value`]s with exact [`Natural`] multiplicities.
///
/// Invariant: no element is stored with multiplicity zero, so equality and
/// ordering of bags are canonical. Iteration is in the total [`Value`]
/// order, which the PSPACE encoding of Theorem 5.1 relies on.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Bag {
    elems: BTreeMap<Value, Natural>,
}

impl Bag {
    /// The empty bag `⟦⟧`.
    pub fn new() -> Bag {
        Bag::default()
    }

    /// The bagging constructor `β(o) = ⟦o⟧`: a bag where `o` 1-belongs.
    pub fn singleton(value: Value) -> Bag {
        let mut bag = Bag::new();
        bag.insert(value);
        bag
    }

    /// A bag containing `count` occurrences of `value` — the paper's `Bᵗᵢ`
    /// notation and its integer encoding (an integer `i` is the bag with
    /// `i` occurrences of a fixed constant).
    pub fn repeated(value: Value, count: impl Into<Natural>) -> Bag {
        let mut bag = Bag::new();
        bag.insert_with_multiplicity(value, count.into());
        bag
    }

    /// Build from values, each contributing one occurrence.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Bag {
        let mut bag = Bag::new();
        for value in values {
            bag.insert(value);
        }
        bag
    }

    /// Build from `(value, multiplicity)` pairs; zero multiplicities are
    /// dropped, duplicate keys accumulate.
    pub fn from_counted(pairs: impl IntoIterator<Item = (Value, Natural)>) -> Bag {
        let mut bag = Bag::new();
        for (value, mult) in pairs {
            bag.insert_with_multiplicity(value, mult);
        }
        bag
    }

    /// Add one occurrence of `value`.
    pub fn insert(&mut self, value: Value) {
        self.insert_with_multiplicity(value, Natural::one());
    }

    /// Add `mult` occurrences of `value` (no-op when `mult` is zero).
    pub fn insert_with_multiplicity(&mut self, value: Value, mult: Natural) {
        if mult.is_zero() {
            return;
        }
        *self.elems.entry(value).or_default() += &mult;
    }

    /// The number of occurrences of `o` — the `n` such that `o` n-belongs.
    pub fn multiplicity(&self, value: &Value) -> Natural {
        self.elems.get(value).cloned().unwrap_or_default()
    }

    /// `true` iff `o` p-belongs for some `p > 0`.
    pub fn contains(&self, value: &Value) -> bool {
        self.elems.contains_key(value)
    }

    /// Total number of occurrences, `Σ mᵢ` (the paper's bag size up to
    /// encoding constants).
    pub fn cardinality(&self) -> Natural {
        self.elems.values().sum()
    }

    /// Number of distinct elements.
    pub fn distinct_count(&self) -> usize {
        self.elems.len()
    }

    /// `true` iff the bag is empty.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Iterate over `(element, multiplicity)` in element order.
    pub fn iter(&self) -> impl Iterator<Item = (&Value, &Natural)> {
        self.elems.iter()
    }

    /// Iterate over distinct elements in order.
    pub fn elements(&self) -> impl Iterator<Item = &Value> {
        self.elems.keys()
    }

    /// The maximal multiplicity of any element (zero for the empty bag).
    /// This is the quantity bounded polynomially in Theorem 4.4 and
    /// exponentially in Theorem 5.1.
    pub fn max_multiplicity(&self) -> Natural {
        self.elems.values().max().cloned().unwrap_or_default()
    }

    /// Subbag test `B ⊑ B′`: whenever `o` n-belongs to `B`, `o` p-belongs
    /// to `B′` for some `p ≥ n`.
    pub fn is_subbag_of(&self, other: &Bag) -> bool {
        self.elems
            .iter()
            .all(|(value, mult)| &other.multiplicity(value) >= mult)
    }

    // ----- basic bag operations (Section 3) -----

    /// Additive union `B ∪⁺ B′`: multiplicities add (`n = p + q`).
    pub fn additive_union(&self, other: &Bag) -> Bag {
        let mut out = self.clone();
        for (value, mult) in &other.elems {
            out.insert_with_multiplicity(value.clone(), mult.clone());
        }
        out
    }

    /// Subtraction `B − B′`: monus on multiplicities (`n = sup(0, p − q)`).
    pub fn subtract(&self, other: &Bag) -> Bag {
        let mut out = Bag::new();
        for (value, mult) in &self.elems {
            let rem = mult.monus(&other.multiplicity(value));
            out.insert_with_multiplicity(value.clone(), rem);
        }
        out
    }

    /// Maximal union `B ∪ B′`: `n = sup(p, q)`.
    pub fn max_union(&self, other: &Bag) -> Bag {
        let mut out = self.clone();
        for (value, mult) in &other.elems {
            let entry = out.elems.entry(value.clone()).or_default();
            if &*entry < mult {
                *entry = mult.clone();
            }
        }
        out
    }

    /// Intersection `B ∩ B′`: `n = inf(p, q)`.
    pub fn intersect(&self, other: &Bag) -> Bag {
        let mut out = Bag::new();
        for (value, mult) in &self.elems {
            let min = mult.clone().min(other.multiplicity(value));
            out.insert_with_multiplicity(value.clone(), min);
        }
        out
    }

    /// Duplicate elimination `ε(B)`: each element of `B` 1-belongs to the
    /// result.
    pub fn dedup(&self) -> Bag {
        Bag {
            elems: self
                .elems
                .keys()
                .map(|value| (value.clone(), Natural::one()))
                .collect(),
        }
    }

    /// Scale every multiplicity by `factor` (used by `δ` on nested bags
    /// with duplicated inner bags).
    pub fn scale(&self, factor: &Natural) -> Bag {
        if factor.is_zero() {
            return Bag::new();
        }
        Bag {
            elems: self
                .elems
                .iter()
                .map(|(value, mult)| (value.clone(), mult * factor))
                .collect(),
        }
    }

    // ----- constructive operations -----

    /// Cartesian product `B × B′` on bags of tuples: tuples concatenate and
    /// multiplicities multiply (`n = p·q`).
    pub fn product(&self, other: &Bag) -> Result<Bag, BagError> {
        let mut out = Bag::new();
        for (left, lm) in &self.elems {
            let left_fields = left
                .as_tuple()
                .ok_or_else(|| BagError::NotATuple(left.clone()))?;
            for (right, rm) in &other.elems {
                let right_fields = right
                    .as_tuple()
                    .ok_or_else(|| BagError::NotATuple(right.clone()))?;
                let mut fields = Vec::with_capacity(left_fields.len() + right_fields.len());
                fields.extend_from_slice(left_fields);
                fields.extend_from_slice(right_fields);
                out.insert_with_multiplicity(Value::Tuple(fields), lm * rm);
            }
        }
        Ok(out)
    }

    /// Powerset `P(B) = ⟦b | b ⊑ B⟧`: one occurrence of **each distinct
    /// subbag** of `B`. There are exactly `Π (mᵢ + 1)` of them. Because
    /// that count explodes, callers pass an element budget and receive
    /// [`BagError::TooLarge`] when the exact predicted count exceeds it.
    pub fn powerset(&self, max_elements: u64) -> Result<Bag, BagError> {
        let counts = self.subbag_odometer(max_elements)?;
        let mut out = Bag::new();
        for choice in counts {
            out.insert(Value::Bag(choice.build(self)));
        }
        Ok(out)
    }

    /// The exact number of distinct subbags, `Π (mᵢ + 1)` — what
    /// [`Bag::powerset`] would produce. (`n + 1` for the paper's bag of
    /// `n` copies of one constant.)
    pub fn powerset_cardinality(&self) -> Natural {
        let mut total = Natural::one();
        for mult in self.elems.values() {
            total *= &mult.succ();
        }
        total
    }

    /// Powerbag `P_b(B)` (Definition 5.1): distinguishes occurrences, so a
    /// subbag choosing `jᵢ` of `mᵢ` duplicates occurs `Π C(mᵢ, jᵢ)` times.
    /// Output cardinality is `2^|B|` (`2ⁿ` for `n` copies of one constant)
    /// while the number of *distinct* elements stays `Π (mᵢ + 1)`.
    pub fn powerbag(&self, max_elements: u64) -> Result<Bag, BagError> {
        let counts = self.subbag_odometer(max_elements)?;
        let mut out = Bag::new();
        for choice in counts {
            let mult = choice.binomial_weight(self);
            out.insert_with_multiplicity(Value::Bag(choice.build(self)), mult);
        }
        Ok(out)
    }

    /// The exact total cardinality of `P_b(B)`, namely `2^|B|`.
    pub fn powerbag_cardinality(&self) -> Natural {
        // Guard: 2^|B| as a Natural requires |B| to fit in u64 bits-wise;
        // cardinality() is exact so convert via bits when huge.
        match self.cardinality().to_u64() {
            Some(n) => Natural::pow2(n),
            None => {
                // |B| ≥ 2^64: the value is astronomically large; we return
                // the formula applied to the saturated exponent. In practice
                // eval limits reject such bags long before this point.
                Natural::pow2(u64::MAX)
            }
        }
    }

    /// Bag-destroy `δ(B)` on a bag of bags:
    /// `δ(⟦x₁, …, xₙ⟧) = x₁ ∪⁺ ⋯ ∪⁺ xₙ` with duplicated inner bags
    /// contributing once per occurrence.
    pub fn destroy(&self) -> Result<Bag, BagError> {
        let mut out = Bag::new();
        for (value, mult) in &self.elems {
            let inner = value
                .as_bag()
                .ok_or_else(|| BagError::NotABag(value.clone()))?;
            for (elem, inner_mult) in inner.iter() {
                out.insert_with_multiplicity(elem.clone(), inner_mult * mult);
            }
        }
        Ok(out)
    }

    // ----- filters -----

    /// Restructuring `MAP_φ(B)`: applies `φ` to every member; images
    /// accumulate multiplicities (`n = n₁ + ⋯ + n_l` over the preimages).
    pub fn map<E>(&self, mut f: impl FnMut(&Value) -> Result<Value, E>) -> Result<Bag, E> {
        let mut out = Bag::new();
        for (value, mult) in &self.elems {
            out.insert_with_multiplicity(f(value)?, mult.clone());
        }
        Ok(out)
    }

    /// Selection `σ(B)`: keeps elements satisfying the predicate with their
    /// multiplicities.
    pub fn select<E>(&self, mut pred: impl FnMut(&Value) -> Result<bool, E>) -> Result<Bag, E> {
        let mut out = Bag::new();
        for (value, mult) in &self.elems {
            if pred(value)? {
                out.insert_with_multiplicity(value.clone(), mult.clone());
            }
        }
        Ok(out)
    }

    /// Projection helper `π_{i₁,…,iₙ}` over 1-based attribute indices —
    /// the paper's abbreviation for `MAP_{λx.[α_{i₁}(x), …]}`.
    pub fn project(&self, indices: &[usize]) -> Result<Bag, BagError> {
        self.map(|value| {
            let fields = value
                .as_tuple()
                .ok_or_else(|| BagError::NotATuple(value.clone()))?;
            let mut out = Vec::with_capacity(indices.len());
            for &ix in indices {
                let field = fields.get(ix.checked_sub(1).ok_or(BagError::BadArity {
                    index: ix,
                    arity: fields.len(),
                })?);
                out.push(
                    field
                        .ok_or(BagError::BadArity {
                            index: ix,
                            arity: fields.len(),
                        })?
                        .clone(),
                );
            }
            Ok(Value::Tuple(out))
        })
    }

    /// The nest operator of [PG88] (Conclusion): group a bag of tuples by
    /// the 1-based attributes in `group`; each distinct group key appears
    /// **once**, extended with a bag holding the residual-attribute tuples
    /// of its members (inner multiplicities preserved).
    pub fn nest(&self, group: &[usize]) -> Result<Bag, BagError> {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<Vec<Value>, Bag> = BTreeMap::new();
        for (row, mult) in &self.elems {
            let fields = row
                .as_tuple()
                .ok_or_else(|| BagError::NotATuple(row.clone()))?;
            let mut key = Vec::with_capacity(group.len());
            for &ix in group {
                let field =
                    ix.checked_sub(1)
                        .and_then(|i| fields.get(i))
                        .ok_or(BagError::BadArity {
                            index: ix,
                            arity: fields.len(),
                        })?;
                key.push(field.clone());
            }
            let residual: Vec<Value> = fields
                .iter()
                .enumerate()
                .filter(|(i, _)| !group.contains(&(i + 1)))
                .map(|(_, v)| v.clone())
                .collect();
            groups
                .entry(key)
                .or_default()
                .insert_with_multiplicity(Value::Tuple(residual), mult.clone());
        }
        let mut out = Bag::new();
        for (key, inner) in groups {
            let mut fields = key;
            fields.push(Value::Bag(inner));
            out.insert(Value::Tuple(fields));
        }
        Ok(out)
    }

    /// Shared subbag enumeration machinery for `P` and `P_b`.
    fn subbag_odometer(&self, max_elements: u64) -> Result<Vec<SubbagChoice>, BagError> {
        let predicted = self.powerset_cardinality();
        if predicted > Natural::from(max_elements) {
            return Err(BagError::TooLarge {
                predicted,
                limit: max_elements,
            });
        }
        // Since Π(mᵢ+1) ≤ max_elements (a u64), every mᵢ fits in u64.
        let bounds: Vec<u64> = self
            .elems
            .values()
            .map(|m| m.to_u64().expect("bounded by predicted cardinality"))
            .collect();
        let mut choices = Vec::with_capacity(predicted.to_u64().unwrap_or(0) as usize);
        let mut current = vec![0u64; bounds.len()];
        loop {
            choices.push(SubbagChoice {
                counts: current.clone(),
            });
            // Odometer increment over 0..=bounds[i].
            let mut pos = 0;
            loop {
                if pos == bounds.len() {
                    return Ok(choices);
                }
                if current[pos] < bounds[pos] {
                    current[pos] += 1;
                    break;
                }
                current[pos] = 0;
                pos += 1;
            }
        }
    }
}

/// One subbag choice: how many occurrences of each distinct element (in
/// element order) the subbag takes.
struct SubbagChoice {
    counts: Vec<u64>,
}

impl SubbagChoice {
    fn build(&self, source: &Bag) -> Bag {
        let mut out = Bag::new();
        for ((value, _), &count) in source.elems.iter().zip(&self.counts) {
            out.insert_with_multiplicity(value.clone(), Natural::from(count));
        }
        out
    }

    fn binomial_weight(&self, source: &Bag) -> Natural {
        let mut weight = Natural::one();
        for ((_, mult), &count) in source.elems.iter().zip(&self.counts) {
            weight *= &Natural::binomial(mult, count);
        }
        weight
    }
}

impl FromIterator<Value> for Bag {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Bag::from_values(iter)
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{{")?;
        let mut first = true;
        for (value, mult) in &self.elems {
            if !first {
                f.write_str(", ")?;
            }
            first = false;
            if mult.is_one() {
                write!(f, "{value}")?;
            } else {
                write!(f, "{value}^{mult}")?;
            }
        }
        f.write_str("}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn sym(s: &str) -> Value {
        Value::sym(s)
    }

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    fn bag_of(pairs: &[(&str, u64)]) -> Bag {
        Bag::from_counted(pairs.iter().map(|(s, m)| (sym(s), nat(*m))))
    }

    #[test]
    fn multiplicity_arithmetic_of_the_four_unions() {
        let b1 = bag_of(&[("a", 3), ("b", 1)]);
        let b2 = bag_of(&[("a", 2), ("c", 5)]);
        let add = b1.additive_union(&b2);
        assert_eq!(add.multiplicity(&sym("a")), nat(5));
        assert_eq!(add.multiplicity(&sym("b")), nat(1));
        assert_eq!(add.multiplicity(&sym("c")), nat(5));
        let sub = b1.subtract(&b2);
        assert_eq!(sub.multiplicity(&sym("a")), nat(1));
        assert_eq!(sub.multiplicity(&sym("b")), nat(1));
        assert!(!sub.contains(&sym("c"))); // sup(0, 0-5) = 0
        let max = b1.max_union(&b2);
        assert_eq!(max.multiplicity(&sym("a")), nat(3));
        assert_eq!(max.multiplicity(&sym("c")), nat(5));
        let int = b1.intersect(&b2);
        assert_eq!(int.multiplicity(&sym("a")), nat(2));
        assert!(!int.contains(&sym("b")));
        assert!(!int.contains(&sym("c")));
    }

    #[test]
    fn zero_multiplicities_never_stored() {
        let b1 = bag_of(&[("a", 2)]);
        let b2 = bag_of(&[("a", 2)]);
        let diff = b1.subtract(&b2);
        assert!(diff.is_empty());
        assert_eq!(diff, Bag::new());
    }

    #[test]
    fn product_multiplies_multiplicities() {
        // The Section 4 counting technique: B with n×[a,b] and m×[b,a].
        let n = 4u64;
        let m = 3u64;
        let mut b = Bag::new();
        b.insert_with_multiplicity(Value::tuple([sym("a"), sym("b")]), nat(n));
        b.insert_with_multiplicity(Value::tuple([sym("b"), sym("a")]), nat(m));
        let prod = b.product(&b).unwrap();
        let abab = Value::tuple([sym("a"), sym("b"), sym("a"), sym("b")]);
        let baab = Value::tuple([sym("b"), sym("a"), sym("a"), sym("b")]);
        assert_eq!(prod.multiplicity(&abab), nat(n * n));
        assert_eq!(prod.multiplicity(&baab), nat(m * n));
        assert_eq!(prod.cardinality(), nat((n + m) * (n + m)));
    }

    #[test]
    fn product_rejects_non_tuples() {
        let b = Bag::singleton(sym("a"));
        assert!(matches!(b.product(&b), Err(BagError::NotATuple(_))));
    }

    #[test]
    fn powerset_of_n_copies_has_n_plus_1_elements() {
        // Introduction: "the powerbag of a bag containing n occurrences of a
        // single constant has cardinality 2^n, while its powerset has
        // cardinality n+1."
        for n in 0u64..6 {
            let b = Bag::repeated(sym("a"), n);
            let ps = b.powerset(1 << 20).unwrap();
            assert_eq!(ps.cardinality(), nat(n + 1));
            assert_eq!(b.powerset_cardinality(), nat(n + 1));
            let pb = b.powerbag(1 << 20).unwrap();
            assert_eq!(pb.cardinality(), Natural::pow2(n));
            assert_eq!(b.powerbag_cardinality(), Natural::pow2(n));
        }
    }

    #[test]
    fn powerset_elements_are_exactly_the_subbags() {
        let b = bag_of(&[("a", 2), ("b", 1)]);
        let ps = b.powerset(1 << 20).unwrap();
        assert_eq!(ps.cardinality(), nat(6)); // (2+1)(1+1)
        for (sub, mult) in ps.iter() {
            assert!(mult.is_one());
            assert!(sub.as_bag().unwrap().is_subbag_of(&b));
        }
        // Every subbag present.
        assert!(ps.contains(&Value::Bag(Bag::new())));
        assert!(ps.contains(&Value::Bag(b.clone())));
        assert!(ps.contains(&Value::Bag(bag_of(&[("a", 1), ("b", 1)]))));
    }

    #[test]
    fn powerbag_matches_definition_5_1_example() {
        // P_b(⟦a,a⟧) = ⟦⟦⟧, ⟦a⟧, ⟦a⟧, ⟦a,a⟧⟧ vs P(⟦a,a⟧) = ⟦⟦⟧, ⟦a⟧, ⟦a,a⟧⟧.
        let b = Bag::repeated(sym("a"), 2u64);
        let pb = b.powerbag(100).unwrap();
        assert_eq!(pb.multiplicity(&Value::Bag(Bag::new())), nat(1));
        assert_eq!(
            pb.multiplicity(&Value::Bag(Bag::repeated(sym("a"), 1u64))),
            nat(2)
        );
        assert_eq!(pb.multiplicity(&Value::Bag(b.clone())), nat(1));
        let ps = b.powerset(100).unwrap();
        assert_eq!(
            ps.multiplicity(&Value::Bag(Bag::repeated(sym("a"), 1u64))),
            nat(1)
        );
    }

    #[test]
    fn powerset_respects_budget() {
        let b = Bag::repeated(sym("a"), 1_000_000u64);
        let err = b.powerset(1000).unwrap_err();
        match err {
            BagError::TooLarge { predicted, limit } => {
                assert_eq!(predicted, nat(1_000_001));
                assert_eq!(limit, 1000);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn destroy_sums_inner_bags_scaled_by_outer_multiplicity() {
        // δ(⟦⟦a,a⟧, ⟦a,b⟧²⟧) = ⟦a⁴, b²⟧
        let inner1 = bag_of(&[("a", 2)]);
        let inner2 = bag_of(&[("a", 1), ("b", 1)]);
        let mut outer = Bag::new();
        outer.insert(Value::Bag(inner1));
        outer.insert_with_multiplicity(Value::Bag(inner2), nat(2));
        let flat = outer.destroy().unwrap();
        assert_eq!(flat.multiplicity(&sym("a")), nat(4));
        assert_eq!(flat.multiplicity(&sym("b")), nat(2));
    }

    #[test]
    fn destroy_rejects_non_bags() {
        let b = Bag::singleton(sym("a"));
        assert!(matches!(b.destroy(), Err(BagError::NotABag(_))));
    }

    #[test]
    fn map_accumulates_preimage_multiplicities() {
        // MAP_{λx.β(x)}(⟦a,a,b⟧) = ⟦⟦a⟧,⟦a⟧,⟦b⟧⟧ — i.e. ⟦a⟧ has mult 2.
        let b = bag_of(&[("a", 2), ("b", 1)]);
        let mapped: Bag = b
            .map(|v| Ok::<_, std::convert::Infallible>(Value::Bag(Bag::singleton(v.clone()))))
            .unwrap();
        assert_eq!(
            mapped.multiplicity(&Value::Bag(Bag::singleton(sym("a")))),
            nat(2)
        );
        // Collapsing map: everything to one constant sums all multiplicities.
        let collapsed: Bag = b
            .map(|_| Ok::<_, std::convert::Infallible>(sym("z")))
            .unwrap();
        assert_eq!(collapsed.multiplicity(&sym("z")), nat(3));
    }

    #[test]
    fn select_preserves_multiplicities() {
        let b = bag_of(&[("a", 2), ("b", 5)]);
        let picked = b
            .select(|v| Ok::<_, std::convert::Infallible>(*v == sym("b")))
            .unwrap();
        assert_eq!(picked.multiplicity(&sym("b")), nat(5));
        assert_eq!(picked.distinct_count(), 1);
    }

    #[test]
    fn dedup_keeps_one_of_each() {
        let b = bag_of(&[("a", 7), ("b", 2)]);
        let d = b.dedup();
        assert_eq!(d.multiplicity(&sym("a")), nat(1));
        assert_eq!(d.multiplicity(&sym("b")), nat(1));
        assert_eq!(d.cardinality(), nat(2));
        assert_eq!(d.dedup(), d); // idempotent
    }

    #[test]
    fn project_is_map_composition() {
        let mut b = Bag::new();
        b.insert(Value::tuple([sym("x"), sym("y"), sym("z")]));
        let projected = b.project(&[3, 1]).unwrap();
        assert!(projected.contains(&Value::tuple([sym("z"), sym("x")])));
        assert!(matches!(
            b.project(&[4]),
            Err(BagError::BadArity { index: 4, arity: 3 })
        ));
        assert!(matches!(b.project(&[0]), Err(BagError::BadArity { .. })));
    }

    #[test]
    fn subbag_partial_order() {
        let small = bag_of(&[("a", 1)]);
        let big = bag_of(&[("a", 3), ("b", 1)]);
        assert!(small.is_subbag_of(&big));
        assert!(!big.is_subbag_of(&small));
        assert!(Bag::new().is_subbag_of(&small));
        assert!(small.is_subbag_of(&small));
    }

    #[test]
    fn algebraic_laws_on_samples() {
        let b1 = bag_of(&[("a", 3), ("b", 1)]);
        let b2 = bag_of(&[("a", 1), ("c", 2)]);
        let b3 = bag_of(&[("b", 4)]);
        // Commutativity (∪⁺, ∪, ∩) and associativity (∪⁺, ∪, ∩).
        assert_eq!(b1.additive_union(&b2), b2.additive_union(&b1));
        assert_eq!(b1.max_union(&b2), b2.max_union(&b1));
        assert_eq!(b1.intersect(&b2), b2.intersect(&b1));
        assert_eq!(
            b1.additive_union(&b2).additive_union(&b3),
            b1.additive_union(&b2.additive_union(&b3))
        );
        assert_eq!(
            b1.max_union(&b2).max_union(&b3),
            b1.max_union(&b2.max_union(&b3))
        );
        assert_eq!(
            b1.intersect(&b2).intersect(&b3),
            b1.intersect(&b2.intersect(&b3))
        );
    }

    #[test]
    fn display_uses_multiplicity_exponents() {
        let b = bag_of(&[("a", 2), ("b", 1)]);
        assert_eq!(b.to_string(), "{{a^2, b}}");
    }
}
