//! Static typing and fragment analysis of BALG expressions.
//!
//! Beyond plain type inference, the checker computes the structural
//! parameters the paper's hierarchy results are phrased in:
//!
//! * **bag nesting** of every intermediate type — membership in BALGᵏ
//!   (Sections 4–6); BALG¹ additionally requires every type to be *strictly
//!   unnested* (`U^k` or `⟦U^k⟧`, Section 4);
//! * **power nesting** — the maximal number of powerset/powerbag operations
//!   on a root-to-leaf path of the expression tree, defining the classes
//!   BALGᵏᵢ of Theorem 6.2;
//! * **extension flags** — powerbag `P_b`, inflationary fixpoint `IFP`, and
//!   order predicates are not part of the core algebra and are tracked so
//!   experiments can state exactly which fragment a query lives in.

use std::fmt;

use crate::expr::{Expr, Pred, Var};
use crate::schema::Schema;
use crate::types::Type;

/// A static type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A variable is neither λ-bound nor declared in the schema.
    UnboundVariable(Var),
    /// A bag operation was applied to a non-bag type.
    NotABag(Type),
    /// Cartesian product requires bags of tuples.
    NotATupleBag(Type),
    /// Attribute projection on a non-tuple type or out-of-range index.
    BadAttribute {
        /// 1-based requested index.
        index: usize,
        /// The offending type.
        ty: Type,
    },
    /// Two sides of a union/difference/comparison have incompatible types.
    Incompatible(Type, Type),
    /// `δ` applied to a bag whose elements are not bags.
    DestroyNeedsNestedBag(Type),
    /// A literal value is not homogeneous (has no type).
    IllTypedLiteral,
    /// IFP body type incompatible with its accumulator.
    IfpBodyMismatch(Type, Type),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(name) => write!(f, "unbound variable {name}"),
            TypeError::NotABag(ty) => write!(f, "expected a bag type, got {ty}"),
            TypeError::NotATupleBag(ty) => {
                write!(f, "cartesian product needs a bag of tuples, got {ty}")
            }
            TypeError::BadAttribute { index, ty } => {
                write!(f, "attribute α{index} invalid for type {ty}")
            }
            TypeError::Incompatible(a, b) => write!(f, "incompatible types {a} and {b}"),
            TypeError::DestroyNeedsNestedBag(ty) => {
                write!(f, "δ needs a bag of bags, got {ty}")
            }
            TypeError::IllTypedLiteral => f.write_str("heterogeneous literal bag has no type"),
            TypeError::IfpBodyMismatch(a, b) => {
                write!(f, "IFP body type {a} incompatible with accumulator {b}")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// The result of analyzing a well-typed expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// The output type.
    pub ty: Type,
    /// Maximal bag nesting over every intermediate type (inputs included).
    pub max_bag_nesting: usize,
    /// `true` iff every intermediate type is `U^k` or `⟦U^k⟧` — the BALG¹
    /// typing discipline of Section 4.
    pub strictly_unnested: bool,
    /// Maximal number of `P`/`P_b` on a root-to-leaf path (the power
    /// nesting `i` of BALGᵏᵢ, Theorem 6.2).
    pub power_nesting: usize,
    /// Uses the powerbag extension (Definition 5.1).
    pub uses_powerbag: bool,
    /// Uses the inflationary fixpoint extension (Section 6).
    pub uses_ifp: bool,
    /// Uses order predicates `<`/`≤` on the domain.
    pub uses_order: bool,
    /// Uses duplicate elimination `ε` (relevant to Proposition 4.1).
    pub uses_dedup: bool,
    /// Uses subtraction `−` (relevant to Propositions 4.1–4.3).
    pub uses_subtract: bool,
    /// Uses powerset `P`.
    pub uses_powerset: bool,
    /// Uses the nest extension (\[PG88\], Conclusion).
    pub uses_nest: bool,
}

impl Analysis {
    /// The smallest `k` such that the expression is in BALGᵏ. By the
    /// Section 4 convention, level 1 additionally demands strictly
    /// unnested types.
    pub fn balg_level(&self) -> usize {
        if self.max_bag_nesting <= 1 && self.strictly_unnested {
            1
        } else {
            self.max_bag_nesting.max(2)
        }
    }

    /// `true` iff the expression is in BALGᵏ (and uses no extensions).
    pub fn in_balg(&self, k: usize) -> bool {
        self.is_core_balg() && self.balg_level() <= k
    }

    /// `true` iff only the paper's core BALG operations are used (no
    /// powerbag, no IFP, no nest, no order predicates).
    pub fn is_core_balg(&self) -> bool {
        !self.uses_powerbag && !self.uses_ifp && !self.uses_order && !self.uses_nest
    }
}

#[derive(Default)]
struct State {
    max_bag_nesting: usize,
    strictly_unnested: bool,
    uses_powerbag: bool,
    uses_ifp: bool,
    uses_order: bool,
    uses_dedup: bool,
    uses_subtract: bool,
    uses_powerset: bool,
    uses_nest: bool,
}

impl State {
    fn observe(&mut self, ty: &Type) {
        self.max_bag_nesting = self.max_bag_nesting.max(ty.bag_nesting());
        if !ty.is_unnested() {
            self.strictly_unnested = false;
        }
    }
}

/// Type-check `expr` against `schema` and compute its [`Analysis`].
pub fn check(expr: &Expr, schema: &Schema) -> Result<Analysis, TypeError> {
    let mut state = State {
        strictly_unnested: true,
        ..State::default()
    };
    let mut env: Vec<(Var, Type)> = Vec::new();
    let (ty, power) = infer(expr, schema, &mut env, &mut state)?;
    Ok(Analysis {
        ty,
        max_bag_nesting: state.max_bag_nesting,
        strictly_unnested: state.strictly_unnested,
        power_nesting: power,
        uses_powerbag: state.uses_powerbag,
        uses_ifp: state.uses_ifp,
        uses_order: state.uses_order,
        uses_dedup: state.uses_dedup,
        uses_subtract: state.uses_subtract,
        uses_powerset: state.uses_powerset,
        uses_nest: state.uses_nest,
    })
}

/// Infer only the output type of `expr` under `schema`.
pub fn infer_type(expr: &Expr, schema: &Schema) -> Result<Type, TypeError> {
    check(expr, schema).map(|analysis| analysis.ty)
}

type Inferred = (Type, usize);

fn infer(
    expr: &Expr,
    schema: &Schema,
    env: &mut Vec<(Var, Type)>,
    state: &mut State,
) -> Result<Inferred, TypeError> {
    let (ty, power) = match expr {
        Expr::Var(name) => {
            let ty = env
                .iter()
                .rev()
                .find(|(bound, _)| bound == name)
                .map(|(_, ty)| ty.clone())
                .or_else(|| schema.get(name).cloned())
                .ok_or_else(|| TypeError::UnboundVariable(name.clone()))?;
            (ty, 0)
        }
        Expr::Lit(value) => {
            let ty = value.infer_type().ok_or(TypeError::IllTypedLiteral)?;
            (ty, 0)
        }
        Expr::AdditiveUnion(a, b)
        | Expr::Subtract(a, b)
        | Expr::MaxUnion(a, b)
        | Expr::Intersect(a, b) => {
            if matches!(expr, Expr::Subtract(_, _)) {
                state.uses_subtract = true;
            }
            let (ta, pa) = infer(a, schema, env, state)?;
            let (tb, pb) = infer(b, schema, env, state)?;
            require_bag(&ta)?;
            require_bag(&tb)?;
            let unified = ta
                .unify(&tb)
                .ok_or_else(|| TypeError::Incompatible(ta.clone(), tb.clone()))?;
            (unified, pa.max(pb))
        }
        Expr::Tuple(fields) => {
            let mut tys = Vec::with_capacity(fields.len());
            let mut power = 0;
            for field in fields {
                let (ty, p) = infer(field, schema, env, state)?;
                tys.push(ty);
                power = power.max(p);
            }
            (Type::Tuple(tys), power)
        }
        Expr::Singleton(e) => {
            let (ty, p) = infer(e, schema, env, state)?;
            (Type::bag(ty), p)
        }
        Expr::Product(a, b) => {
            let (ta, pa) = infer(a, schema, env, state)?;
            let (tb, pb) = infer(b, schema, env, state)?;
            let elem = product_element(&ta, &tb)?;
            (Type::bag(elem), pa.max(pb))
        }
        Expr::Powerset(e) => {
            state.uses_powerset = true;
            let (ty, p) = infer(e, schema, env, state)?;
            require_bag(&ty)?;
            (Type::bag(ty), p + 1)
        }
        Expr::Powerbag(e) => {
            state.uses_powerbag = true;
            let (ty, p) = infer(e, schema, env, state)?;
            require_bag(&ty)?;
            (Type::bag(ty), p + 1)
        }
        Expr::Attr(e, index) => {
            let (ty, p) = infer(e, schema, env, state)?;
            let field =
                match &ty {
                    Type::Tuple(fields) => fields.get(index.wrapping_sub(1)).cloned().ok_or(
                        TypeError::BadAttribute {
                            index: *index,
                            ty: ty.clone(),
                        },
                    )?,
                    Type::Unknown => Type::Unknown,
                    other => {
                        return Err(TypeError::BadAttribute {
                            index: *index,
                            ty: other.clone(),
                        })
                    }
                };
            (field, p)
        }
        Expr::Destroy(e) => {
            let (ty, p) = infer(e, schema, env, state)?;
            let inner = match &ty {
                Type::Bag(inner) => match inner.as_ref() {
                    Type::Bag(_) | Type::Unknown => (**inner).clone(),
                    _ => return Err(TypeError::DestroyNeedsNestedBag(ty.clone())),
                },
                _ => return Err(TypeError::NotABag(ty.clone())),
            };
            // δ(⟦⟦T⟧⟧) : ⟦T⟧; for an unknown inner, stay unknown.
            let out = match inner {
                Type::Bag(t) => Type::bag(*t),
                Type::Unknown => Type::bag(Type::Unknown),
                _ => unreachable!("guarded above"),
            };
            (out, p)
        }
        Expr::Map { var, body, input } => {
            let (tin, pin) = infer(input, schema, env, state)?;
            let elem = element_of(&tin)?;
            env.push((var.clone(), elem));
            let body_result = infer(body, schema, env, state);
            env.pop();
            let (tbody, pbody) = body_result?;
            (Type::bag(tbody), pin.max(pbody))
        }
        Expr::Select { var, pred, input } => {
            let (tin, pin) = infer(input, schema, env, state)?;
            let elem = element_of(&tin)?;
            env.push((var.clone(), elem));
            let pred_result = infer_pred(pred, schema, env, state);
            env.pop();
            let ppred = pred_result?;
            (tin, pin.max(ppred))
        }
        Expr::Dedup(e) => {
            state.uses_dedup = true;
            let (ty, p) = infer(e, schema, env, state)?;
            require_bag(&ty)?;
            (ty, p)
        }
        Expr::Nest { group, input } => {
            state.uses_nest = true;
            let (tin, p) = infer(input, schema, env, state)?;
            let fields = match &tin {
                Type::Bag(inner) => match inner.as_ref() {
                    Type::Tuple(fields) => Some(fields.clone()),
                    Type::Unknown => None,
                    _ => return Err(TypeError::NotATupleBag(tin.clone())),
                },
                Type::Unknown => None,
                other => return Err(TypeError::NotABag(other.clone())),
            };
            let out = match fields {
                None => Type::bag(Type::Unknown),
                Some(fields) => {
                    let mut key = Vec::with_capacity(group.len() + 1);
                    for &ix in group {
                        let field = ix.checked_sub(1).and_then(|i| fields.get(i)).ok_or(
                            TypeError::BadAttribute {
                                index: ix,
                                ty: Type::Tuple(fields.clone()),
                            },
                        )?;
                        key.push(field.clone());
                    }
                    let residual: Vec<Type> = fields
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| !group.contains(&(i + 1)))
                        .map(|(_, t)| t.clone())
                        .collect();
                    key.push(Type::bag(Type::Tuple(residual)));
                    Type::bag(Type::Tuple(key))
                }
            };
            (out, p)
        }
        Expr::Ifp { var, body, input } => {
            state.uses_ifp = true;
            let (tin, pin) = infer(input, schema, env, state)?;
            require_bag(&tin)?;
            env.push((var.clone(), tin.clone()));
            let body_result = infer(body, schema, env, state);
            env.pop();
            let (tbody, pbody) = body_result?;
            let unified = tin
                .unify(&tbody)
                .ok_or_else(|| TypeError::IfpBodyMismatch(tbody.clone(), tin.clone()))?;
            (unified, pin.max(pbody))
        }
    };
    state.observe(&ty);
    Ok((ty, power))
}

fn infer_pred(
    pred: &Pred,
    schema: &Schema,
    env: &mut Vec<(Var, Type)>,
    state: &mut State,
) -> Result<usize, TypeError> {
    match pred {
        Pred::True => Ok(0),
        Pred::Eq(a, b) | Pred::Lt(a, b) | Pred::Le(a, b) => {
            if matches!(pred, Pred::Lt(_, _) | Pred::Le(_, _)) {
                state.uses_order = true;
            }
            let (ta, pa) = infer(a, schema, env, state)?;
            let (tb, pb) = infer(b, schema, env, state)?;
            if ta.unify(&tb).is_none() {
                return Err(TypeError::Incompatible(ta, tb));
            }
            Ok(pa.max(pb))
        }
        Pred::Member(a, b) => {
            let (ta, pa) = infer(a, schema, env, state)?;
            let (tb, pb) = infer(b, schema, env, state)?;
            let elem = element_of(&tb)?;
            if ta.unify(&elem).is_none() {
                return Err(TypeError::Incompatible(ta, elem));
            }
            Ok(pa.max(pb))
        }
        Pred::SubBag(a, b) => {
            let (ta, pa) = infer(a, schema, env, state)?;
            let (tb, pb) = infer(b, schema, env, state)?;
            require_bag(&ta)?;
            require_bag(&tb)?;
            if ta.unify(&tb).is_none() {
                return Err(TypeError::Incompatible(ta, tb));
            }
            Ok(pa.max(pb))
        }
        Pred::Not(p) => infer_pred(p, schema, env, state),
        Pred::And(a, b) | Pred::Or(a, b) => {
            let pa = infer_pred(a, schema, env, state)?;
            let pb = infer_pred(b, schema, env, state)?;
            Ok(pa.max(pb))
        }
    }
}

fn require_bag(ty: &Type) -> Result<(), TypeError> {
    match ty {
        Type::Bag(_) | Type::Unknown => Ok(()),
        other => Err(TypeError::NotABag(other.clone())),
    }
}

fn element_of(ty: &Type) -> Result<Type, TypeError> {
    match ty {
        Type::Bag(inner) => Ok((**inner).clone()),
        Type::Unknown => Ok(Type::Unknown),
        other => Err(TypeError::NotABag(other.clone())),
    }
}

fn product_element(ta: &Type, tb: &Type) -> Result<Type, TypeError> {
    let fields_of = |ty: &Type| -> Result<Option<Vec<Type>>, TypeError> {
        match ty {
            Type::Bag(inner) => match inner.as_ref() {
                Type::Tuple(fields) => Ok(Some(fields.clone())),
                Type::Unknown => Ok(None),
                _ => Err(TypeError::NotATupleBag(ty.clone())),
            },
            Type::Unknown => Ok(None),
            other => Err(TypeError::NotABag(other.clone())),
        }
    };
    match (fields_of(ta)?, fields_of(tb)?) {
        (Some(mut left), Some(right)) => {
            left.extend(right);
            Ok(Type::Tuple(left))
        }
        _ => Ok(Type::Unknown),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn graph_schema() -> Schema {
        Schema::new().with("G", Type::relation(2))
    }

    #[test]
    fn infer_flat_query_types() {
        let schema = graph_schema();
        let q = Expr::var("G").project(&[2, 1]);
        let analysis = check(&q, &schema).unwrap();
        assert_eq!(analysis.ty, Type::relation(2));
        assert_eq!(analysis.balg_level(), 1);
        assert!(analysis.in_balg(1));
        assert!(analysis.is_core_balg());
    }

    #[test]
    fn product_concatenates_tuple_types() {
        let schema = graph_schema();
        let q = Expr::var("G").product(Expr::var("G"));
        assert_eq!(infer_type(&q, &schema).unwrap(), Type::relation(4));
    }

    #[test]
    fn powerset_raises_level_and_power_nesting() {
        let schema = graph_schema();
        let q = Expr::var("G").powerset();
        let analysis = check(&q, &schema).unwrap();
        assert_eq!(analysis.ty, Type::bag(Type::relation(2)));
        assert_eq!(analysis.max_bag_nesting, 2);
        assert_eq!(analysis.balg_level(), 2);
        assert_eq!(analysis.power_nesting, 1);
        assert!(!analysis.in_balg(1));
        assert!(analysis.in_balg(2));
        // P(P(G)) has power nesting 2 and level 3.
        let q2 = Expr::var("G").powerset().powerset();
        let analysis2 = check(&q2, &schema).unwrap();
        assert_eq!(analysis2.power_nesting, 2);
        assert_eq!(analysis2.balg_level(), 3);
    }

    #[test]
    fn destroy_lowers_nesting_in_type_but_not_in_analysis() {
        let schema = graph_schema();
        let q = Expr::var("G").powerset().destroy();
        let analysis = check(&q, &schema).unwrap();
        assert_eq!(analysis.ty, Type::relation(2));
        // The intermediate P(G) : ⟦⟦[U,U]⟧⟧ pushes the level to 2 even
        // though the output is flat — this is the "increase of nesting is
        // essential" point after Proposition 3.1.
        assert_eq!(analysis.max_bag_nesting, 2);
        assert_eq!(analysis.balg_level(), 2);
    }

    #[test]
    fn delta_on_flat_bag_rejected() {
        let schema = graph_schema();
        let q = Expr::var("G").destroy();
        assert!(matches!(
            check(&q, &schema),
            Err(TypeError::DestroyNeedsNestedBag(_))
        ));
    }

    #[test]
    fn map_binds_element_type() {
        let schema = graph_schema();
        let q = Expr::var("G").map("x", Expr::var("x").attr(1).singleton());
        let analysis = check(&q, &schema).unwrap();
        assert_eq!(analysis.ty, Type::bag(Type::bag(Type::Atom)));
        assert_eq!(analysis.balg_level(), 2);
    }

    #[test]
    fn select_pred_type_mismatch_detected() {
        let schema = graph_schema();
        // comparing a tuple attribute (atom) with the whole bag G
        let q = Expr::var("G").select("x", Pred::eq(Expr::var("x").attr(1), Expr::var("G")));
        assert!(matches!(
            check(&q, &schema),
            Err(TypeError::Incompatible(_, _))
        ));
    }

    #[test]
    fn attribute_errors() {
        let schema = graph_schema();
        let q = Expr::var("G").map("x", Expr::var("x").attr(3));
        assert!(matches!(
            check(&q, &schema),
            Err(TypeError::BadAttribute { index: 3, .. })
        ));
    }

    #[test]
    fn extension_flags() {
        let schema = graph_schema();
        let pb = Expr::var("G").powerbag();
        let analysis = check(&pb, &schema).unwrap();
        assert!(analysis.uses_powerbag);
        assert!(!analysis.is_core_balg());

        let ifp = Expr::var("G").ifp("T", Expr::var("T"));
        assert!(check(&ifp, &schema).unwrap().uses_ifp);

        let ord = Expr::var("G").select(
            "x",
            Pred::lt(Expr::var("x").attr(1), Expr::var("x").attr(2)),
        );
        assert!(check(&ord, &schema).unwrap().uses_order);

        let frag = Expr::var("G").subtract(Expr::var("G")).dedup();
        let fa = check(&frag, &schema).unwrap();
        assert!(fa.uses_subtract && fa.uses_dedup);
    }

    #[test]
    fn strictly_unnested_discipline() {
        // A tuple holding a bag has nesting 1 but is NOT a BALG¹ type.
        let schema = graph_schema();
        let q = Expr::var("G").map(
            "x",
            Expr::tuple([Expr::var("x").attr(1), Expr::var("x").singleton()]),
        );
        let analysis = check(&q, &schema).unwrap();
        assert!(!analysis.strictly_unnested);
        assert!(analysis.balg_level() >= 2);
    }

    #[test]
    fn empty_bag_literal_unifies() {
        let schema = graph_schema();
        let q = Expr::var("G").additive_union(Expr::empty_bag());
        assert_eq!(infer_type(&q, &schema).unwrap(), Type::relation(2));
    }

    #[test]
    fn unbound_variable_reported() {
        let schema = Schema::new();
        assert!(matches!(
            check(&Expr::var("R"), &schema),
            Err(TypeError::UnboundVariable(_))
        ));
    }

    #[test]
    fn literal_types() {
        let schema = Schema::new();
        let lit = Expr::lit(Value::bag([Value::tuple([Value::sym("a")])]));
        assert_eq!(infer_type(&lit, &schema).unwrap(), Type::relation(1));
    }
}
