//! The BALG expression language (Section 3).
//!
//! Expressions denote mappings from a bag database (plus λ-bound variables)
//! to values. λ-abstraction is first-class: `MAP` and `σ` carry a bound
//! variable name and a body expression, so expression trees are inspectable
//! — the Proposition 4.2 translation and the complexity analyses walk MAP/σ
//! bodies, which opaque closures would forbid.
//!
//! Two constructs extend the paper's core algebra and are flagged by the
//! type checker ([`crate::typecheck`]): the powerbag `P_b` (Definition 5.1)
//! and the inflationary fixpoint `IFP` (Section 6, Theorem 6.6). Order
//! predicates `<`/`≤` correspond to the paper's "in the presence of an
//! order on the domain" results and are likewise flagged.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// A variable name — a database bag name or a λ-bound variable.
pub type Var = Arc<str>;

/// A BALG expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A database bag or λ-bound variable.
    Var(Var),
    /// A constant object.
    Lit(Value),
    /// Additive union `e ∪⁺ e′` (multiplicities add).
    AdditiveUnion(Box<Expr>, Box<Expr>),
    /// Subtraction `e − e′` (monus).
    Subtract(Box<Expr>, Box<Expr>),
    /// Maximal union `e ∪ e′` (max of multiplicities).
    MaxUnion(Box<Expr>, Box<Expr>),
    /// Intersection `e ∩ e′` (min of multiplicities).
    Intersect(Box<Expr>, Box<Expr>),
    /// Tupling `τ(e₁, …, eₖ)`.
    Tuple(Vec<Expr>),
    /// Bagging `β(e)`.
    Singleton(Box<Expr>),
    /// Cartesian product `e × e′` on bags of tuples.
    Product(Box<Expr>, Box<Expr>),
    /// Powerset `P(e)`: one occurrence of each subbag.
    Powerset(Box<Expr>),
    /// Powerbag `P_b(e)` (Definition 5.1) — **extension**, hyper-exponential.
    Powerbag(Box<Expr>),
    /// Attribute projection `αᵢ(e)` on a tuple-valued expression (1-based).
    Attr(Box<Expr>, usize),
    /// Bag-destroy `δ(e)`.
    Destroy(Box<Expr>),
    /// Restructuring `MAP_{λx.body}(input)`.
    Map {
        /// The λ-bound variable.
        var: Var,
        /// The λ body, evaluated once per distinct element.
        body: Box<Expr>,
        /// The bag being restructured.
        input: Box<Expr>,
    },
    /// Selection `σ_{λx.pred}(input)`.
    Select {
        /// The λ-bound variable.
        var: Var,
        /// The selection predicate.
        pred: Box<Pred>,
        /// The bag being filtered.
        input: Box<Expr>,
    },
    /// Duplicate elimination `ε(e)`.
    Dedup(Box<Expr>),
    /// Inflationary fixpoint (Section 6): least fixpoint of
    /// `T(B) = body(B) ∪ B` starting from `input` — **extension**.
    Ifp {
        /// Variable bound to the accumulating bag.
        var: Var,
        /// The step expression `φ`.
        body: Box<Expr>,
        /// The initial bag.
        input: Box<Expr>,
    },
    /// The set-nesting operator of \[PG88\]/\[Won93\] (Conclusion, "Nest vs
    /// Powerset") — **extension**: group a bag of `k`-tuples by the
    /// attributes in `group` (1-based); each group appears once, paired
    /// with the bag of residual-attribute tuples (multiplicities kept).
    Nest {
        /// The grouping attributes (1-based, in output order).
        group: Vec<usize>,
        /// The input bag of tuples.
        input: Box<Expr>,
    },
}

/// A selection predicate. The paper's primitive is equality of two λ
/// expressions (`σ_{φ=φ′}`); the boolean connectives and the
/// membership/containment tests are definable sugar ("membership and
/// containment tests can be expressed using the algebra operators and
/// equality testing", Section 3). `<`/`≤` assume an order on the domain.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Pred {
    /// Always true (selects everything).
    True,
    /// `φ = φ′`.
    Eq(Expr, Expr),
    /// `φ < φ′` in the domain order — **order extension**.
    Lt(Expr, Expr),
    /// `φ ≤ φ′` in the domain order — **order extension**.
    Le(Expr, Expr),
    /// `φ ∈ φ′` (membership in a bag) — definable sugar.
    Member(Expr, Expr),
    /// `φ ⊑ φ′` (subbag containment) — definable sugar.
    SubBag(Expr, Expr),
    /// Negation.
    Not(Box<Pred>),
    /// Conjunction.
    And(Box<Pred>, Box<Pred>),
    /// Disjunction.
    Or(Box<Pred>, Box<Pred>),
}

impl Expr {
    /// A variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(Arc::from(name))
    }

    /// A constant.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Lit(value.into())
    }

    /// The empty-bag constant `⟦⟧`.
    pub fn empty_bag() -> Expr {
        Expr::Lit(Value::empty_bag())
    }

    /// A literal bag of the given constant values.
    pub fn bag_lit(values: impl IntoIterator<Item = Value>) -> Expr {
        Expr::Lit(Value::bag(values))
    }

    /// Tupling of several expressions.
    pub fn tuple(fields: impl IntoIterator<Item = Expr>) -> Expr {
        Expr::Tuple(fields.into_iter().collect())
    }

    /// `self ∪⁺ other`.
    pub fn additive_union(self, other: Expr) -> Expr {
        Expr::AdditiveUnion(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn subtract(self, other: Expr) -> Expr {
        Expr::Subtract(Box::new(self), Box::new(other))
    }

    /// `self ∪ other` (maximal union).
    pub fn max_union(self, other: Expr) -> Expr {
        Expr::MaxUnion(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersect(self, other: Expr) -> Expr {
        Expr::Intersect(Box::new(self), Box::new(other))
    }

    /// `β(self)`.
    pub fn singleton(self) -> Expr {
        Expr::Singleton(Box::new(self))
    }

    /// `self × other`.
    pub fn product(self, other: Expr) -> Expr {
        Expr::Product(Box::new(self), Box::new(other))
    }

    /// `P(self)`.
    pub fn powerset(self) -> Expr {
        Expr::Powerset(Box::new(self))
    }

    /// `P_b(self)` (extension).
    pub fn powerbag(self) -> Expr {
        Expr::Powerbag(Box::new(self))
    }

    /// `αᵢ(self)` — 1-based attribute projection on a tuple.
    pub fn attr(self, index: usize) -> Expr {
        Expr::Attr(Box::new(self), index)
    }

    /// `δ(self)`.
    pub fn destroy(self) -> Expr {
        Expr::Destroy(Box::new(self))
    }

    /// `ε(self)`.
    pub fn dedup(self) -> Expr {
        Expr::Dedup(Box::new(self))
    }

    /// `MAP_{λvar.body}(self)`.
    pub fn map(self, var: &str, body: Expr) -> Expr {
        Expr::Map {
            var: Arc::from(var),
            body: Box::new(body),
            input: Box::new(self),
        }
    }

    /// `σ_{λvar.pred}(self)`.
    pub fn select(self, var: &str, pred: Pred) -> Expr {
        Expr::Select {
            var: Arc::from(var),
            pred: Box::new(pred),
            input: Box::new(self),
        }
    }

    /// The paper's projection abbreviation `π_{i₁,…,iₙ}(self)`: sugar for
    /// `MAP_{λx.[α_{i₁}(x), …, α_{iₙ}(x)]}(self)` with 1-based indices.
    pub fn project(self, indices: &[usize]) -> Expr {
        let x = Expr::var("π");
        let body = Expr::tuple(indices.iter().map(|&i| x.clone().attr(i)));
        self.map("π", body)
    }

    /// Inflationary fixpoint of `λvar.body` seeded with `self` (extension).
    pub fn ifp(self, var: &str, body: Expr) -> Expr {
        Expr::Ifp {
            var: Arc::from(var),
            body: Box::new(body),
            input: Box::new(self),
        }
    }

    /// `nest_{group}(self)` — the \[PG88\] nest operator (extension):
    /// group by the 1-based attributes in `group`, nesting the residual
    /// attributes into a bag.
    pub fn nest(self, group: &[usize]) -> Expr {
        Expr::Nest {
            group: group.to_vec(),
            input: Box::new(self),
        }
    }

    /// Bounded inflationary fixpoint (\[Suc93\], Conclusion): the least
    /// fixpoint of `T(B) = (body(B) ∩ bound) ∪ B` — inflation can never
    /// escape the subbags of `bound`, so the iteration converges within
    /// `|bound|` steps and the complexity stays bounded. Transitive
    /// closure over the edge set fits this shape.
    pub fn bounded_ifp(self, var: &str, body: Expr, bound: Expr) -> Expr {
        self.ifp(var, body.intersect(bound))
    }

    /// Number of AST nodes (expression size, as used in the inductive
    /// proofs of Propositions 4.1 and 4.5).
    pub fn size(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |_| count += 1);
        count
    }

    /// Pre-order traversal over all sub-expressions, including λ bodies.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Var(_) | Expr::Lit(_) => {}
            Expr::AdditiveUnion(a, b)
            | Expr::Subtract(a, b)
            | Expr::MaxUnion(a, b)
            | Expr::Intersect(a, b)
            | Expr::Product(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Tuple(fields) => {
                for field in fields {
                    field.visit(f);
                }
            }
            Expr::Singleton(e)
            | Expr::Powerset(e)
            | Expr::Powerbag(e)
            | Expr::Attr(e, _)
            | Expr::Destroy(e)
            | Expr::Dedup(e) => e.visit(f),
            Expr::Map { body, input, .. } | Expr::Ifp { body, input, .. } => {
                body.visit(f);
                input.visit(f);
            }
            Expr::Select { pred, input, .. } => {
                pred.visit(f);
                input.visit(f);
            }
            Expr::Nest { input, .. } => input.visit(f),
        }
    }

    /// Free variables (not bound by any enclosing MAP/σ/IFP λ), in first
    /// occurrence order — these are the database bags the query reads.
    pub fn free_vars(&self) -> Vec<Var> {
        fn go(expr: &Expr, bound: &mut Vec<Var>, out: &mut Vec<Var>) {
            match expr {
                Expr::Var(name) => {
                    if !bound.contains(name) && !out.contains(name) {
                        out.push(name.clone());
                    }
                }
                Expr::Lit(_) => {}
                Expr::AdditiveUnion(a, b)
                | Expr::Subtract(a, b)
                | Expr::MaxUnion(a, b)
                | Expr::Intersect(a, b)
                | Expr::Product(a, b) => {
                    go(a, bound, out);
                    go(b, bound, out);
                }
                Expr::Tuple(fields) => {
                    for field in fields {
                        go(field, bound, out);
                    }
                }
                Expr::Singleton(e)
                | Expr::Powerset(e)
                | Expr::Powerbag(e)
                | Expr::Attr(e, _)
                | Expr::Destroy(e)
                | Expr::Dedup(e) => go(e, bound, out),
                Expr::Map { var, body, input } | Expr::Ifp { var, body, input } => {
                    go(input, bound, out);
                    bound.push(var.clone());
                    go(body, bound, out);
                    bound.pop();
                }
                Expr::Select { var, pred, input } => {
                    go(input, bound, out);
                    bound.push(var.clone());
                    pred.visit_exprs(&mut |e| go(e, &mut bound.clone(), out));
                    bound.pop();
                }
                Expr::Nest { input, .. } => go(input, bound, out),
            }
        }
        let mut out = Vec::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }
}

impl Pred {
    /// `φ = φ′`.
    pub fn eq(a: Expr, b: Expr) -> Pred {
        Pred::Eq(a, b)
    }

    /// `φ < φ′`.
    pub fn lt(a: Expr, b: Expr) -> Pred {
        Pred::Lt(a, b)
    }

    /// `φ ≤ φ′`.
    pub fn le(a: Expr, b: Expr) -> Pred {
        Pred::Le(a, b)
    }

    /// Conjunction.
    pub fn and(self, other: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(other))
    }

    /// Disjunction.
    pub fn or(self, other: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Pred {
        Pred::Not(Box::new(self))
    }

    /// Visit the expressions immediately inside the predicate.
    pub fn visit_exprs(&self, f: &mut impl FnMut(&Expr)) {
        match self {
            Pred::True => {}
            Pred::Eq(a, b)
            | Pred::Lt(a, b)
            | Pred::Le(a, b)
            | Pred::Member(a, b)
            | Pred::SubBag(a, b) => {
                f(a);
                f(b);
            }
            Pred::Not(p) => p.visit_exprs(f),
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.visit_exprs(f);
                b.visit_exprs(f);
            }
        }
    }

    /// Visit the predicate and every sub-expression recursively.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        self.visit_exprs(&mut |e| e.visit(f));
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(name) => f.write_str(name),
            Expr::Lit(value) => write!(f, "{value}"),
            Expr::AdditiveUnion(a, b) => write!(f, "({a} ∪⁺ {b})"),
            Expr::Subtract(a, b) => write!(f, "({a} − {b})"),
            Expr::MaxUnion(a, b) => write!(f, "({a} ∪ {b})"),
            Expr::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            Expr::Tuple(fields) => {
                f.write_str("τ(")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{field}")?;
                }
                f.write_str(")")
            }
            Expr::Singleton(e) => write!(f, "β({e})"),
            Expr::Product(a, b) => write!(f, "({a} × {b})"),
            Expr::Powerset(e) => write!(f, "P({e})"),
            Expr::Powerbag(e) => write!(f, "Pb({e})"),
            Expr::Attr(e, i) => write!(f, "α{i}({e})"),
            Expr::Destroy(e) => write!(f, "δ({e})"),
            Expr::Map { var, body, input } => write!(f, "MAP[λ{var}.{body}]({input})"),
            Expr::Select { var, pred, input } => write!(f, "σ[λ{var}.{pred}]({input})"),
            Expr::Dedup(e) => write!(f, "ε({e})"),
            Expr::Ifp { var, body, input } => write!(f, "IFP[λ{var}.{body}]({input})"),
            Expr::Nest { group, input } => {
                f.write_str("nest[")?;
                for (i, g) in group.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, "]({input})")
            }
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => f.write_str("⊤"),
            Pred::Eq(a, b) => write!(f, "{a} = {b}"),
            Pred::Lt(a, b) => write!(f, "{a} < {b}"),
            Pred::Le(a, b) => write!(f, "{a} ≤ {b}"),
            Pred::Member(a, b) => write!(f, "{a} ∈ {b}"),
            Pred::SubBag(a, b) => write!(f, "{a} ⊑ {b}"),
            Pred::Not(p) => write!(f, "¬({p})"),
            Pred::And(a, b) => write!(f, "({a} ∧ {b})"),
            Pred::Or(a, b) => write!(f, "({a} ∨ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        // π₁,₄(σ_{α₂=α₃}(B×B)) — the Section 4 counting query.
        let q = Expr::var("B")
            .product(Expr::var("B"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4]);
        assert!(q.size() > 5);
        let shown = q.to_string();
        assert!(shown.contains("α2(x) = α3(x)"), "{shown}");
        assert!(shown.contains("(B × B)"), "{shown}");
    }

    #[test]
    fn free_vars_skip_lambda_bound() {
        let q = Expr::var("R")
            .map("x", Expr::var("x").attr(1))
            .additive_union(Expr::var("S"));
        assert_eq!(
            q.free_vars(),
            vec![Arc::<str>::from("R"), Arc::<str>::from("S")]
        );
    }

    #[test]
    fn free_vars_inside_select_pred_see_outer_bindings() {
        // σ over R with a predicate referring to outer bag S: S is free.
        let q = Expr::var("R").select(
            "x",
            Pred::eq(Expr::var("x").attr(1).singleton(), Expr::var("S")),
        );
        let fv = q.free_vars();
        assert!(fv.contains(&Arc::<str>::from("R")));
        assert!(fv.contains(&Arc::<str>::from("S")));
        assert!(!fv.contains(&Arc::<str>::from("x")));
    }

    #[test]
    fn size_counts_lambda_bodies() {
        let small = Expr::var("R");
        assert_eq!(small.size(), 1);
        let mapped = Expr::var("R").map("x", Expr::var("x").singleton());
        // Map + input Var + body(Singleton + Var) = 4
        assert_eq!(mapped.size(), 4);
    }

    #[test]
    fn visit_reaches_every_node() {
        let q = Expr::var("R").select("x", Pred::eq(Expr::var("x"), Expr::lit(Value::sym("a"))));
        let mut vars = 0;
        q.visit(&mut |e| {
            if matches!(e, Expr::Var(_)) {
                vars += 1;
            }
        });
        assert_eq!(vars, 2); // R and x
    }

    #[test]
    fn projection_sugar_expands_to_map() {
        let q = Expr::var("R").project(&[2]);
        match q {
            Expr::Map { body, .. } => match *body {
                Expr::Tuple(fields) => assert_eq!(fields.len(), 1),
                other => panic!("expected tuple body, got {other:?}"),
            },
            other => panic!("expected MAP, got {other:?}"),
        }
    }
}
