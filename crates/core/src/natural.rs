//! Arbitrary-precision natural numbers used for bag multiplicities.
//!
//! Proposition 3.2 of the paper shows that two consecutive applications of
//! the powerset operator `P` followed by two `δ` (bag-destroy) multiply
//! duplicate counts hyper-exponentially: even a single iterate of
//! `δδPP` on a ten-element bag overflows `u128`. Multiplicities therefore
//! need exact arithmetic — but the overwhelming majority of multiplicities
//! the evaluator touches are tiny, so the representation is inline-small:
//! a single `u64` word with no heap allocation, spilling to little-endian
//! `u64` limbs only when a result exceeds `u64::MAX`. `zero()`, `one()`,
//! `+`, `×`, monus, min and max are allocation-free in the all-small case.
//!
//! Only the operations the algebra needs are provided: addition (`∪⁺`),
//! monus — truncated subtraction — (`−`), multiplication (`×`), min/max
//! (`∩` / `∪`), exponentiation and binomials (powerset / powerbag
//! cardinality predictions), and decimal conversion for reporting.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Sub};
use std::str::FromStr;

/// An arbitrary-precision natural number (`ℕ`, including zero).
///
/// Values up to `u64::MAX` are stored inline; larger values spill to
/// little-endian `u64` limbs with no trailing zero limbs (so a spilled
/// value always has ≥ 2 limbs). The representation is canonical — every
/// number has exactly one encoding — so the derived `PartialEq`/`Hash`
/// agree with numeric equality.
#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Natural(Repr);

#[derive(Clone, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
enum Repr {
    /// The value itself, for everything that fits a machine word.
    Small(u64),
    /// Little-endian limbs. Invariant: `len ≥ 2` and the top limb is
    /// nonzero, i.e. the value is strictly greater than `u64::MAX`.
    /// Boxed so `Natural` stays two words — multiplicities are copied into
    /// and out of map entries constantly, and almost all of them are small;
    /// the double indirection is paid only by already-huge values.
    #[allow(clippy::box_collection)]
    Big(Box<Vec<u64>>),
}

impl Default for Natural {
    fn default() -> Self {
        Natural::zero()
    }
}

impl Natural {
    /// The number zero.
    pub const fn zero() -> Self {
        Natural(Repr::Small(0))
    }

    /// The number one.
    pub const fn one() -> Self {
        Natural(Repr::Small(1))
    }

    /// `true` iff this is zero.
    pub fn is_zero(&self) -> bool {
        matches!(self.0, Repr::Small(0))
    }

    /// `true` iff this is one.
    pub fn is_one(&self) -> bool {
        matches!(self.0, Repr::Small(1))
    }

    /// Canonicalize a little-endian limb vector (used by the slow paths).
    fn from_limbs(mut limbs: Vec<u64>) -> Natural {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        match limbs.len() {
            0 => Natural::zero(),
            1 => Natural(Repr::Small(limbs[0])),
            _ => Natural(Repr::Big(Box::new(limbs))),
        }
    }

    /// Canonical little-endian limb view for the WAL codec.
    pub(crate) fn limb_view(&self) -> &[u64] {
        self.limbs()
    }

    /// Rebuild from a little-endian limb vector (WAL decode path). The
    /// input need not be canonical; trailing zero limbs are stripped.
    pub(crate) fn from_limb_vec(limbs: Vec<u64>) -> Natural {
        Natural::from_limbs(limbs)
    }

    /// The little-endian limb view (empty for zero). The `Small` word is
    /// exposed as a one-limb slice so the multi-limb algorithms cover both
    /// representations.
    fn limbs(&self) -> &[u64] {
        match &self.0 {
            Repr::Small(0) => &[],
            Repr::Small(v) => std::slice::from_ref(v),
            Repr::Big(limbs) => limbs,
        }
    }

    /// Number of significant bits (`0` for zero). This is the quantity the
    /// LOGSPACE argument of Theorem 4.4 tracks: counters written on the work
    /// tape use `bits()` space.
    pub fn bits(&self) -> u64 {
        let limbs = self.limbs();
        match limbs.last() {
            None => 0,
            Some(&hi) => (limbs.len() as u64 - 1) * 64 + (64 - hi.leading_zeros() as u64),
        }
    }

    /// The value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.0 {
            Repr::Small(v) => Some(v),
            Repr::Big(_) => None,
        }
    }

    /// The value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match &self.0 {
            Repr::Small(v) => Some(*v as u128),
            Repr::Big(limbs) if limbs.len() == 2 => {
                Some((limbs[1] as u128) << 64 | limbs[0] as u128)
            }
            Repr::Big(_) => None,
        }
    }

    /// The value as `f64` (saturating to `f64::INFINITY` on overflow).
    /// Used only for reporting growth curves.
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs().iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
            if acc.is_infinite() {
                return f64::INFINITY;
            }
        }
        acc
    }

    /// Checked subtraction: `Some(self - other)` if `other <= self`.
    pub fn checked_sub(&self, other: &Natural) -> Option<Natural> {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return a.checked_sub(*b).map(|d| Natural(Repr::Small(d)));
        }
        if self < other {
            return None;
        }
        let (a, b) = (self.limbs(), other.limbs());
        let mut limbs = Vec::with_capacity(a.len());
        let mut borrow = 0u64;
        for (i, &lhs) in a.iter().enumerate() {
            let rhs = b.get(i).copied().unwrap_or(0);
            let (d1, b1) = lhs.overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            borrow = (b1 || b2) as u64;
            limbs.push(d2);
        }
        debug_assert_eq!(borrow, 0);
        Some(Natural::from_limbs(limbs))
    }

    /// Monus (truncated subtraction): `max(0, self - other)`. This is the
    /// multiplicity arithmetic of the paper's bag subtraction `−`
    /// (`n = sup(0, p − q)`).
    pub fn monus(&self, other: &Natural) -> Natural {
        self.checked_sub(other).unwrap_or_default()
    }

    /// In-place doubling; used by powerset cardinality prediction.
    pub fn double(&mut self) {
        match &mut self.0 {
            Repr::Small(v) => match v.checked_mul(2) {
                Some(d) => *v = d,
                None => self.0 = Repr::Big(Box::new(vec![*v << 1, 1])),
            },
            Repr::Big(limbs) => {
                let mut carry = 0u64;
                for limb in limbs.iter_mut() {
                    let new_carry = *limb >> 63;
                    *limb = (*limb << 1) | carry;
                    carry = new_carry;
                }
                if carry != 0 {
                    limbs.push(carry);
                }
            }
        }
    }

    /// `self + 1`.
    pub fn succ(&self) -> Natural {
        if let Repr::Small(v) = self.0 {
            if let Some(s) = v.checked_add(1) {
                return Natural(Repr::Small(s));
            }
        }
        self + &Natural::one()
    }

    /// `2^exp`.
    pub fn pow2(exp: u64) -> Natural {
        if exp < 64 {
            return Natural(Repr::Small(1u64 << exp));
        }
        let mut limbs = vec![0u64; (exp / 64) as usize];
        limbs.push(1u64 << (exp % 64));
        Natural(Repr::Big(Box::new(limbs)))
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u64) -> Natural {
        let mut base = self.clone();
        let mut acc = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Multiply by a `u64` in place.
    pub fn mul_u64(&mut self, rhs: u64) {
        match &mut self.0 {
            Repr::Small(v) => {
                let prod = *v as u128 * rhs as u128;
                *self = Natural::from(prod);
            }
            Repr::Big(_) if rhs == 0 => *self = Natural::zero(),
            Repr::Big(limbs) => {
                let mut carry = 0u128;
                for limb in limbs.iter_mut() {
                    let prod = *limb as u128 * rhs as u128 + carry;
                    *limb = prod as u64;
                    carry = prod >> 64;
                }
                if carry != 0 {
                    limbs.push(carry as u64);
                }
            }
        }
    }

    /// Divide by a nonzero `u64`, returning `(quotient, remainder)`.
    pub fn divmod_u64(&self, rhs: u64) -> (Natural, u64) {
        assert!(rhs != 0, "division by zero");
        if let Repr::Small(v) = self.0 {
            return (Natural(Repr::Small(v / rhs)), v % rhs);
        }
        let limbs = self.limbs();
        let mut quot = vec![0u64; limbs.len()];
        let mut rem = 0u128;
        for i in (0..limbs.len()).rev() {
            let cur = (rem << 64) | limbs[i] as u128;
            quot[i] = (cur / rhs as u128) as u64;
            rem = cur % rhs as u128;
        }
        (Natural::from_limbs(quot), rem as u64)
    }

    /// Exact division by a nonzero `u64`; panics (debug) if inexact.
    pub fn div_exact_u64(&self, rhs: u64) -> Natural {
        let (q, r) = self.divmod_u64(rhs);
        debug_assert_eq!(r, 0, "div_exact_u64: inexact division");
        q
    }

    /// Binomial coefficient `C(n, k)` where `n` is arbitrary precision.
    ///
    /// The powerbag `P_b` creates `C(m, j)` occurrences of a subbag choosing
    /// `j` of `m` duplicate occurrences (Definition 5.1); this computes that
    /// multiplicity directly instead of materializing the renaming `H`.
    pub fn binomial(n: &Natural, k: u64) -> Natural {
        // C(n, k) = Π_{i=1..k} (n - k + i) / i, computed left to right so
        // every intermediate division is exact.
        if let Some(small) = n.to_u64() {
            if k > small {
                return Natural::zero();
            }
        }
        let mut acc = Natural::one();
        let mut factor = n.monus(&Natural::from(k));
        for i in 1..=k {
            factor += &Natural::one();
            acc = &acc * &factor;
            acc = acc.div_exact_u64(i);
        }
        acc
    }

    /// Decimal string, chunked through `u64` divisions.
    fn to_decimal(&self) -> String {
        if let Repr::Small(v) = self.0 {
            return v.to_string();
        }
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut out = chunks.pop().map(|c| c.to_string()).unwrap_or_default();
        for c in chunks.into_iter().rev() {
            out.push_str(&format!("{c:019}"));
        }
        out
    }
}

impl From<u64> for Natural {
    fn from(v: u64) -> Self {
        Natural(Repr::Small(v))
    }
}

impl From<u32> for Natural {
    fn from(v: u32) -> Self {
        Natural::from(v as u64)
    }
}

impl From<usize> for Natural {
    fn from(v: usize) -> Self {
        Natural::from(v as u64)
    }
}

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        if v <= u64::MAX as u128 {
            Natural(Repr::Small(v as u64))
        } else {
            Natural(Repr::Big(Box::new(vec![v as u64, (v >> 64) as u64])))
        }
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.0, &other.0) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // A spilled value is strictly greater than any inline one.
            (Repr::Small(_), Repr::Big(_)) => Ordering::Less,
            (Repr::Big(_), Repr::Small(_)) => Ordering::Greater,
            (Repr::Big(a), Repr::Big(b)) => a
                .len()
                .cmp(&b.len())
                .then_with(|| a.iter().rev().cmp(b.iter().rev())),
        }
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Multi-limb addition over canonical limb views.
fn add_limbs(a: &[u64], b: &[u64]) -> Natural {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut limbs = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for (i, &lhs) in long.iter().enumerate() {
        let rhs = short.get(i).copied().unwrap_or(0);
        let (s1, c1) = lhs.overflowing_add(rhs);
        let (s2, c2) = s1.overflowing_add(carry);
        carry = (c1 || c2) as u64;
        limbs.push(s2);
    }
    if carry != 0 {
        limbs.push(carry);
    }
    Natural::from_limbs(limbs)
}

impl Add<&Natural> for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &rhs.0) {
            return match a.checked_add(*b) {
                Some(sum) => Natural(Repr::Small(sum)),
                None => Natural(Repr::Big(Box::new(vec![a.wrapping_add(*b), 1]))),
            };
        }
        add_limbs(self.limbs(), rhs.limbs())
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(self, rhs: Natural) -> Natural {
        &self + &rhs
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &rhs.0) {
            if let Some(sum) = a.checked_add(*b) {
                self.0 = Repr::Small(sum);
                return;
            }
        }
        *self = &*self + rhs;
    }
}

impl Sub<&Natural> for &Natural {
    type Output = Natural;
    /// Monus semantics: saturates at zero, matching bag subtraction.
    fn sub(self, rhs: &Natural) -> Natural {
        self.monus(rhs)
    }
}

impl Mul<&Natural> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &rhs.0) {
            return Natural::from(*a as u128 * *b as u128);
        }
        if self.is_zero() || rhs.is_zero() {
            return Natural::zero();
        }
        let (a, b) = (self.limbs(), rhs.limbs());
        let mut limbs = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = limbs[i + j] as u128 + x as u128 * y as u128 + carry;
                limbs[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = limbs[k] as u128 + carry;
                limbs[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Natural::from_limbs(limbs)
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        &self * &rhs
    }
}

impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = &*self * rhs;
    }
}

impl Sum for Natural {
    fn sum<I: Iterator<Item = Natural>>(iter: I) -> Natural {
        iter.fold(Natural::zero(), |mut acc, x| {
            acc += &x;
            acc
        })
    }
}

impl<'a> Sum<&'a Natural> for Natural {
    fn sum<I: Iterator<Item = &'a Natural>>(iter: I) -> Natural {
        iter.fold(Natural::zero(), |mut acc, x| {
            acc += x;
            acc
        })
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal())
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error parsing a decimal string into a [`Natural`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNaturalError;

impl fmt::Display for ParseNaturalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid decimal natural number")
    }
}

impl std::error::Error for ParseNaturalError {}

impl FromStr for Natural {
    type Err = ParseNaturalError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNaturalError);
        }
        let mut acc = Natural::zero();
        for b in s.bytes() {
            acc.mul_u64(10);
            acc += &Natural::from((b - b'0') as u64);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert!(Natural::zero().is_zero());
        assert_eq!(Natural::from(0u64), Natural::zero());
        assert_eq!(Natural::zero().bits(), 0);
        assert_eq!(n(5).monus(&n(9)), Natural::zero());
    }

    #[test]
    fn small_values_stay_inline() {
        // Everything through u64::MAX is the Small representation; one past
        // it spills to two limbs. from_limbs collapses back down.
        assert!(matches!(Natural::from(u64::MAX).0, Repr::Small(_)));
        let spilled = &Natural::from(u64::MAX) + &n(1);
        assert!(matches!(&spilled.0, Repr::Big(l) if l.len() == 2));
        let back = spilled.monus(&n(1));
        assert!(matches!(back.0, Repr::Small(u64::MAX)));
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let max = Natural::from(u64::MAX);
        let sum = &max + &n(1);
        assert_eq!(sum.to_u128(), Some(u64::MAX as u128 + 1));
        assert_eq!(sum.bits(), 65);
    }

    #[test]
    fn sub_monus_semantics() {
        assert_eq!(n(10).monus(&n(3)), n(7));
        assert_eq!(n(3).monus(&n(10)), n(0));
        let big = Natural::pow2(200);
        let small = Natural::pow2(100);
        let diff = big.monus(&small);
        assert_eq!(&diff + &small, Natural::pow2(200));
    }

    #[test]
    fn checked_sub_none_when_underflow() {
        assert_eq!(n(3).checked_sub(&n(4)), None);
        assert_eq!(n(4).checked_sub(&n(4)), Some(n(0)));
        // Mixed-representation borrows around the spill boundary.
        let boundary = &Natural::from(u64::MAX) + &n(1);
        assert_eq!(boundary.checked_sub(&n(1)), Some(Natural::from(u64::MAX)));
        assert_eq!(n(1).checked_sub(&boundary), None);
    }

    #[test]
    fn mul_matches_u128() {
        let a = 123_456_789_012_345u64;
        let b = 987_654_321_098_765u64;
        let prod = &n(a) * &n(b);
        assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn mul_large() {
        // (2^100)^2 = 2^200
        let x = Natural::pow2(100);
        assert_eq!(&x * &x, Natural::pow2(200));
    }

    #[test]
    fn pow_and_pow2_agree() {
        assert_eq!(n(2).pow(77), Natural::pow2(77));
        assert_eq!(n(3).pow(5), n(243));
        assert_eq!(n(10).pow(0), n(1));
        assert_eq!(n(0).pow(0), n(1)); // convention: 0^0 = 1
        assert_eq!(n(0).pow(3), n(0));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(n(5) < n(6));
        assert!(Natural::pow2(64) > Natural::from(u64::MAX));
        assert!(Natural::pow2(128) > Natural::pow2(127));
        let mut v = [Natural::pow2(70), n(3), Natural::pow2(64), n(0)];
        v.sort();
        assert_eq!(v[0], n(0));
        assert_eq!(v[3], Natural::pow2(70));
    }

    #[test]
    fn divmod_roundtrip() {
        let x = Natural::from_str("123456789012345678901234567890").unwrap();
        let (q, r) = x.divmod_u64(97);
        let mut back = q;
        back.mul_u64(97);
        back += &Natural::from(r);
        assert_eq!(back, x);
        assert!(r < 97);
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            let x = Natural::from_str(s).unwrap();
            assert_eq!(x.to_string(), s);
        }
        assert!(Natural::from_str("").is_err());
        assert!(Natural::from_str("12a").is_err());
    }

    #[test]
    fn binomial_small_cases() {
        assert_eq!(Natural::binomial(&n(5), 2), n(10));
        assert_eq!(Natural::binomial(&n(5), 0), n(1));
        assert_eq!(Natural::binomial(&n(5), 5), n(1));
        assert_eq!(Natural::binomial(&n(5), 6), n(0));
        assert_eq!(Natural::binomial(&n(52), 5), n(2_598_960));
    }

    #[test]
    fn binomial_row_sums_to_pow2() {
        // Σ_j C(m, j) = 2^m — the powerbag cardinality identity used in E3.
        for m in [0u64, 1, 7, 20] {
            let total: Natural = (0..=m).map(|j| Natural::binomial(&n(m), j)).sum();
            assert_eq!(total, Natural::pow2(m));
        }
    }

    #[test]
    fn bits_counts_significant_bits() {
        assert_eq!(n(1).bits(), 1);
        assert_eq!(n(255).bits(), 8);
        assert_eq!(n(256).bits(), 9);
        assert_eq!(Natural::pow2(64).bits(), 65);
    }

    #[test]
    fn double_and_succ() {
        let mut x = n(3);
        x.double();
        assert_eq!(x, n(6));
        let mut y = Natural::from(u64::MAX);
        y.double();
        assert_eq!(y.to_u128(), Some(u64::MAX as u128 * 2));
        assert_eq!(n(0).succ(), n(1));
        assert_eq!(
            Natural::from(u64::MAX).succ().to_u128(),
            Some(u64::MAX as u128 + 1)
        );
    }

    #[test]
    fn sum_iterator() {
        let total: Natural = (1..=10u64).map(Natural::from).sum();
        assert_eq!(total, n(55));
    }

    #[test]
    fn to_f64_reports_magnitude() {
        assert_eq!(n(42).to_f64(), 42.0);
        let big = Natural::pow2(100);
        let approx = big.to_f64();
        assert!((approx / 2f64.powi(100) - 1.0).abs() < 1e-10);
        assert_eq!(Natural::pow2(5000).to_f64(), f64::INFINITY);
    }
}
