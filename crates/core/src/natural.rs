//! Arbitrary-precision natural numbers used for bag multiplicities.
//!
//! Proposition 3.2 of the paper shows that two consecutive applications of
//! the powerset operator `P` followed by two `δ` (bag-destroy) multiply
//! duplicate counts hyper-exponentially: even a single iterate of
//! `δδPP` on a ten-element bag overflows `u128`. Multiplicities therefore
//! use this little-endian limb representation with exact arithmetic.
//!
//! Only the operations the algebra needs are provided: addition (`∪⁺`),
//! monus — truncated subtraction — (`−`), multiplication (`×`), min/max
//! (`∩` / `∪`), exponentiation and binomials (powerset / powerbag
//! cardinality predictions), and decimal conversion for reporting.

use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Sub};
use std::str::FromStr;

/// An arbitrary-precision natural number (`ℕ`, including zero).
///
/// Stored as little-endian `u64` limbs with no trailing zero limbs; zero is
/// the empty limb vector. The representation is canonical, so the derived
/// `PartialEq`/`Hash` agree with numeric equality.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Natural {
    limbs: Vec<u64>,
}

impl Natural {
    /// The number zero.
    pub const fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The number one.
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// `true` iff this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff this is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Number of significant bits (`0` for zero). This is the quantity the
    /// LOGSPACE argument of Theorem 4.4 tracks: counters written on the work
    /// tape use `bits()` space.
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&hi) => (self.limbs.len() as u64 - 1) * 64 + (64 - hi.leading_zeros() as u64),
        }
    }

    /// The value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// The value as `u128` if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }

    /// The value as `f64` (saturating to `f64::INFINITY` on overflow).
    /// Used only for reporting growth curves.
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
            if acc.is_infinite() {
                return f64::INFINITY;
            }
        }
        acc
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Checked subtraction: `Some(self - other)` if `other <= self`.
    pub fn checked_sub(&self, other: &Natural) -> Option<Natural> {
        if self < other {
            return None;
        }
        let mut limbs = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let rhs = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs);
            let (d2, b2) = d1.overflowing_sub(borrow);
            borrow = (b1 || b2) as u64;
            limbs.push(d2);
        }
        debug_assert_eq!(borrow, 0);
        let mut out = Natural { limbs };
        out.normalize();
        Some(out)
    }

    /// Monus (truncated subtraction): `max(0, self - other)`. This is the
    /// multiplicity arithmetic of the paper's bag subtraction `−`
    /// (`n = sup(0, p − q)`).
    pub fn monus(&self, other: &Natural) -> Natural {
        self.checked_sub(other).unwrap_or_default()
    }

    /// In-place doubling; used by powerset cardinality prediction.
    pub fn double(&mut self) {
        let mut carry = 0u64;
        for limb in &mut self.limbs {
            let new_carry = *limb >> 63;
            *limb = (*limb << 1) | carry;
            carry = new_carry;
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// `self + 1`.
    pub fn succ(&self) -> Natural {
        self + &Natural::one()
    }

    /// `2^exp`.
    pub fn pow2(exp: u64) -> Natural {
        let mut limbs = vec![0u64; (exp / 64) as usize];
        limbs.push(1u64 << (exp % 64));
        Natural { limbs }
    }

    /// `self^exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u64) -> Natural {
        let mut base = self.clone();
        let mut acc = Natural::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Multiply by a `u64` in place.
    pub fn mul_u64(&mut self, rhs: u64) {
        if rhs == 0 {
            self.limbs.clear();
            return;
        }
        let mut carry = 0u128;
        for limb in &mut self.limbs {
            let prod = *limb as u128 * rhs as u128 + carry;
            *limb = prod as u64;
            carry = prod >> 64;
        }
        if carry != 0 {
            self.limbs.push(carry as u64);
        }
    }

    /// Divide by a nonzero `u64`, returning `(quotient, remainder)`.
    pub fn divmod_u64(&self, rhs: u64) -> (Natural, u64) {
        assert!(rhs != 0, "division by zero");
        let mut quot = vec![0u64; self.limbs.len()];
        let mut rem = 0u128;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            quot[i] = (cur / rhs as u128) as u64;
            rem = cur % rhs as u128;
        }
        let mut q = Natural { limbs: quot };
        q.normalize();
        (q, rem as u64)
    }

    /// Exact division by a nonzero `u64`; panics (debug) if inexact.
    pub fn div_exact_u64(&self, rhs: u64) -> Natural {
        let (q, r) = self.divmod_u64(rhs);
        debug_assert_eq!(r, 0, "div_exact_u64: inexact division");
        q
    }

    /// Binomial coefficient `C(n, k)` where `n` is arbitrary precision.
    ///
    /// The powerbag `P_b` creates `C(m, j)` occurrences of a subbag choosing
    /// `j` of `m` duplicate occurrences (Definition 5.1); this computes that
    /// multiplicity directly instead of materializing the renaming `H`.
    pub fn binomial(n: &Natural, k: u64) -> Natural {
        // C(n, k) = Π_{i=1..k} (n - k + i) / i, computed left to right so
        // every intermediate division is exact.
        if let Some(small) = n.to_u64() {
            if k > small {
                return Natural::zero();
            }
        }
        let mut acc = Natural::one();
        let mut factor = n.monus(&Natural::from(k));
        for i in 1..=k {
            factor += &Natural::one();
            acc = &acc * &factor;
            acc = acc.div_exact_u64(i);
        }
        acc
    }

    /// Decimal string, chunked through `u64` divisions.
    fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_owned();
        }
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divmod_u64(CHUNK);
            chunks.push(r);
            cur = q;
        }
        let mut out = chunks.pop().map(|c| c.to_string()).unwrap_or_default();
        for c in chunks.into_iter().rev() {
            out.push_str(&format!("{c:019}"));
        }
        out
    }
}

impl From<u64> for Natural {
    fn from(v: u64) -> Self {
        let mut n = Natural { limbs: vec![v] };
        n.normalize();
        n
    }
}

impl From<u32> for Natural {
    fn from(v: u32) -> Self {
        Natural::from(v as u64)
    }
}

impl From<usize> for Natural {
    fn from(v: usize) -> Self {
        Natural::from(v as u64)
    }
}

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        let mut n = Natural {
            limbs: vec![v as u64, (v >> 64) as u64],
        };
        n.normalize();
        n
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        self.limbs
            .len()
            .cmp(&other.limbs.len())
            .then_with(|| self.limbs.iter().rev().cmp(other.limbs.iter().rev()))
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<&Natural> for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (self, rhs)
        } else {
            (rhs, self)
        };
        let mut limbs = Vec::with_capacity(long.limbs.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.limbs.len() {
            let rhs_limb = short.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = long.limbs[i].overflowing_add(rhs_limb);
            let (s2, c2) = s1.overflowing_add(carry);
            carry = (c1 || c2) as u64;
            limbs.push(s2);
        }
        if carry != 0 {
            limbs.push(carry);
        }
        Natural { limbs }
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(self, rhs: Natural) -> Natural {
        &self + &rhs
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        *self = &*self + rhs;
    }
}

impl Sub<&Natural> for &Natural {
    type Output = Natural;
    /// Monus semantics: saturates at zero, matching bag subtraction.
    fn sub(self, rhs: &Natural) -> Natural {
        self.monus(rhs)
    }
}

impl Mul<&Natural> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        if self.is_zero() || rhs.is_zero() {
            return Natural::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len() + rhs.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in rhs.limbs.iter().enumerate() {
                let cur = limbs[i + j] as u128 + a as u128 * b as u128 + carry;
                limbs[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + rhs.limbs.len();
            while carry != 0 {
                let cur = limbs[k] as u128 + carry;
                limbs[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut out = Natural { limbs };
        out.normalize();
        out
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        &self * &rhs
    }
}

impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = &*self * rhs;
    }
}

impl Sum for Natural {
    fn sum<I: Iterator<Item = Natural>>(iter: I) -> Natural {
        iter.fold(Natural::zero(), |acc, x| &acc + &x)
    }
}

impl<'a> Sum<&'a Natural> for Natural {
    fn sum<I: Iterator<Item = &'a Natural>>(iter: I) -> Natural {
        iter.fold(Natural::zero(), |acc, x| &acc + x)
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal())
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Error parsing a decimal string into a [`Natural`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNaturalError;

impl fmt::Display for ParseNaturalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid decimal natural number")
    }
}

impl std::error::Error for ParseNaturalError {}

impl FromStr for Natural {
    type Err = ParseNaturalError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNaturalError);
        }
        let mut acc = Natural::zero();
        for b in s.bytes() {
            acc.mul_u64(10);
            acc += &Natural::from((b - b'0') as u64);
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn zero_is_canonical() {
        assert!(Natural::zero().is_zero());
        assert_eq!(Natural::from(0u64), Natural::zero());
        assert_eq!(Natural::zero().bits(), 0);
        assert_eq!(n(5).monus(&n(9)), Natural::zero());
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let max = Natural::from(u64::MAX);
        let sum = &max + &n(1);
        assert_eq!(sum.to_u128(), Some(u64::MAX as u128 + 1));
        assert_eq!(sum.bits(), 65);
    }

    #[test]
    fn sub_monus_semantics() {
        assert_eq!(n(10).monus(&n(3)), n(7));
        assert_eq!(n(3).monus(&n(10)), n(0));
        let big = Natural::pow2(200);
        let small = Natural::pow2(100);
        let diff = big.monus(&small);
        assert_eq!(&diff + &small, Natural::pow2(200));
    }

    #[test]
    fn checked_sub_none_when_underflow() {
        assert_eq!(n(3).checked_sub(&n(4)), None);
        assert_eq!(n(4).checked_sub(&n(4)), Some(n(0)));
    }

    #[test]
    fn mul_matches_u128() {
        let a = 123_456_789_012_345u64;
        let b = 987_654_321_098_765u64;
        let prod = &n(a) * &n(b);
        assert_eq!(prod.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn mul_large() {
        // (2^100)^2 = 2^200
        let x = Natural::pow2(100);
        assert_eq!(&x * &x, Natural::pow2(200));
    }

    #[test]
    fn pow_and_pow2_agree() {
        assert_eq!(n(2).pow(77), Natural::pow2(77));
        assert_eq!(n(3).pow(5), n(243));
        assert_eq!(n(10).pow(0), n(1));
        assert_eq!(n(0).pow(0), n(1)); // convention: 0^0 = 1
        assert_eq!(n(0).pow(3), n(0));
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(n(5) < n(6));
        assert!(Natural::pow2(64) > Natural::from(u64::MAX));
        assert!(Natural::pow2(128) > Natural::pow2(127));
        let mut v = [Natural::pow2(70), n(3), Natural::pow2(64), n(0)];
        v.sort();
        assert_eq!(v[0], n(0));
        assert_eq!(v[3], Natural::pow2(70));
    }

    #[test]
    fn divmod_roundtrip() {
        let x = Natural::from_str("123456789012345678901234567890").unwrap();
        let (q, r) = x.divmod_u64(97);
        let mut back = q.clone();
        back.mul_u64(97);
        back += &Natural::from(r);
        assert_eq!(back, x);
        assert!(r < 97);
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in [
            "0",
            "1",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
        ] {
            let x = Natural::from_str(s).unwrap();
            assert_eq!(x.to_string(), s);
        }
        assert!(Natural::from_str("").is_err());
        assert!(Natural::from_str("12a").is_err());
    }

    #[test]
    fn binomial_small_cases() {
        assert_eq!(Natural::binomial(&n(5), 2), n(10));
        assert_eq!(Natural::binomial(&n(5), 0), n(1));
        assert_eq!(Natural::binomial(&n(5), 5), n(1));
        assert_eq!(Natural::binomial(&n(5), 6), n(0));
        assert_eq!(Natural::binomial(&n(52), 5), n(2_598_960));
    }

    #[test]
    fn binomial_row_sums_to_pow2() {
        // Σ_j C(m, j) = 2^m — the powerbag cardinality identity used in E3.
        for m in [0u64, 1, 7, 20] {
            let total: Natural = (0..=m).map(|j| Natural::binomial(&n(m), j)).sum();
            assert_eq!(total, Natural::pow2(m));
        }
    }

    #[test]
    fn bits_counts_significant_bits() {
        assert_eq!(n(1).bits(), 1);
        assert_eq!(n(255).bits(), 8);
        assert_eq!(n(256).bits(), 9);
        assert_eq!(Natural::pow2(64).bits(), 65);
    }

    #[test]
    fn double_and_succ() {
        let mut x = n(3);
        x.double();
        assert_eq!(x, n(6));
        let mut y = Natural::from(u64::MAX);
        y.double();
        assert_eq!(y.to_u128(), Some(u64::MAX as u128 * 2));
        assert_eq!(n(0).succ(), n(1));
    }

    #[test]
    fn sum_iterator() {
        let total: Natural = (1..=10u64).map(Natural::from).sum();
        assert_eq!(total, n(55));
    }

    #[test]
    fn to_f64_reports_magnitude() {
        assert_eq!(n(42).to_f64(), 42.0);
        let big = Natural::pow2(100);
        let approx = big.to_f64();
        assert!((approx / 2f64.powi(100) - 1.0).abs() < 1e-10);
        assert_eq!(Natural::pow2(5000).to_f64(), f64::INFINITY);
    }
}
