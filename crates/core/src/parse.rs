//! A text syntax for BALG expressions.
//!
//! `Display` renders expressions with the paper's symbols; this module
//! accepts an ASCII functional syntax so queries can be written in
//! config files, tests, and the `balg-cli` REPL:
//!
//! ```text
//! expr  := IDENT                                  -- variable
//!        | int(N)                                 -- integer bag ⟦[a]^N⟧
//!        | empty()                                -- ⟦⟧
//!        | bag{ row, row*3, ... }                 -- bag literal
//!        | unionp(e, e) | minus(e, e)             -- ∪⁺, −
//!        | union(e, e)  | intersect(e, e)         -- ∪, ∩
//!        | product(e, e)                          -- ×
//!        | powerset(e)  | powerbag(e)             -- P, P_b
//!        | singleton(e) | tuple(e, ...)           -- β, τ
//!        | attr(e, i)   | project(e, i, j, ...)   -- αᵢ, π
//!        | destroy(e)   | dedup(e)                -- δ, ε
//!        | map(x, body, input)                    -- MAP_{λx.body}
//!        | select(x, pred, input)                 -- σ_{λx.pred}
//!        | nest(e, i, ...) | ifp(x, body, input)  -- extensions
//!        | count(e) | sum(e) | avg(e)             -- §3 aggregates
//! row   := [ atom, ... ]   atom := IDENT | NUM | 'text'
//! pred  := true | eq(e,e) | lt(e,e) | le(e,e)
//!        | member(e,e) | subbag(e,e)
//!        | not(p) | and(p,p) | or(p,p)
//! ```

use std::fmt;

use crate::bag::Bag;
use crate::derived;
use crate::expr::{Expr, Pred};
use crate::natural::Natural;
use crate::value::Value;

/// A parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExprParseError {
    /// Byte offset.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ExprParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ExprParseError {}

/// Parse a BALG expression from the ASCII syntax.
pub fn parse_expr(input: &str) -> Result<Expr, ExprParseError> {
    let mut parser = P {
        bytes: input.as_bytes(),
        input,
        pos: 0,
    };
    let expr = parser.expr()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing input"));
    }
    Ok(expr)
}

struct P<'a> {
    bytes: &'a [u8],
    input: &'a str,
    pos: usize,
}

impl<'a> P<'a> {
    fn err(&self, message: &str) -> ExprParseError {
        ExprParseError {
            position: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ExprParseError> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", c as char)))
        }
    }

    fn ident(&mut self) -> Result<&'a str, ExprParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected identifier"));
        }
        Ok(&self.input[start..self.pos])
    }

    fn number(&mut self) -> Result<u64, ExprParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected number"));
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| self.err("number out of range"))
    }

    fn expr(&mut self) -> Result<Expr, ExprParseError> {
        self.skip_ws();
        if self.peek() == Some(b'[') {
            return Err(self.err("tuples appear only inside bag{...} rows"));
        }
        let name = self.ident()?;
        // Function call or plain variable?
        if self.peek() == Some(b'(') {
            self.call(name)
        } else if name == "bag" && self.peek() == Some(b'{') {
            self.bag_literal()
        } else {
            Ok(Expr::var(name))
        }
    }

    fn call(&mut self, name: &str) -> Result<Expr, ExprParseError> {
        self.expect(b'(')?;
        let out = match name {
            "int" => {
                let n = self.number()?;
                Expr::Lit(derived::int_value(n))
            }
            "empty" => Expr::empty_bag(),
            "unionp" => {
                let (a, b) = self.two()?;
                a.additive_union(b)
            }
            "minus" => {
                let (a, b) = self.two()?;
                a.subtract(b)
            }
            "union" => {
                let (a, b) = self.two()?;
                a.max_union(b)
            }
            "intersect" => {
                let (a, b) = self.two()?;
                a.intersect(b)
            }
            "product" => {
                let (a, b) = self.two()?;
                a.product(b)
            }
            "powerset" => self.expr()?.powerset(),
            "powerbag" => self.expr()?.powerbag(),
            "singleton" => self.expr()?.singleton(),
            "destroy" => self.expr()?.destroy(),
            "dedup" => self.expr()?.dedup(),
            "count" => derived::count(self.expr()?),
            "sum" => derived::sum(self.expr()?),
            "avg" => derived::average(self.expr()?),
            "tuple" => {
                let mut fields = vec![self.expr()?];
                while self.eat(b',') {
                    fields.push(self.expr()?);
                }
                Expr::Tuple(fields)
            }
            "attr" => {
                let e = self.expr()?;
                self.expect(b',')?;
                let i = self.number()? as usize;
                e.attr(i)
            }
            "project" => {
                let e = self.expr()?;
                let mut indices = Vec::new();
                while self.eat(b',') {
                    indices.push(self.number()? as usize);
                }
                if indices.is_empty() {
                    return Err(self.err("project needs at least one attribute"));
                }
                e.project(&indices)
            }
            "nest" => {
                let e = self.expr()?;
                let mut indices = Vec::new();
                while self.eat(b',') {
                    indices.push(self.number()? as usize);
                }
                if indices.is_empty() {
                    return Err(self.err("nest needs at least one attribute"));
                }
                e.nest(&indices)
            }
            "map" => {
                let var = self.ident()?.to_owned();
                self.expect(b',')?;
                let body = self.expr()?;
                self.expect(b',')?;
                let input = self.expr()?;
                input.map(&var, body)
            }
            "select" => {
                let var = self.ident()?.to_owned();
                self.expect(b',')?;
                let pred = self.pred()?;
                self.expect(b',')?;
                let input = self.expr()?;
                input.select(&var, pred)
            }
            "ifp" => {
                let var = self.ident()?.to_owned();
                self.expect(b',')?;
                let body = self.expr()?;
                self.expect(b',')?;
                let input = self.expr()?;
                input.ifp(&var, body)
            }
            "sym" => {
                let name = self.ident()?;
                Expr::lit(Value::sym(name))
            }
            other => return Err(self.err(&format!("unknown operator {other}"))),
        };
        self.expect(b')')?;
        Ok(out)
    }

    fn two(&mut self) -> Result<(Expr, Expr), ExprParseError> {
        let a = self.expr()?;
        self.expect(b',')?;
        let b = self.expr()?;
        Ok((a, b))
    }

    fn pred(&mut self) -> Result<Pred, ExprParseError> {
        let name = self.ident()?;
        if name == "true" {
            return Ok(Pred::True);
        }
        self.expect(b'(')?;
        let out = match name {
            "eq" => {
                let (a, b) = self.two()?;
                Pred::Eq(a, b)
            }
            "lt" => {
                let (a, b) = self.two()?;
                Pred::Lt(a, b)
            }
            "le" => {
                let (a, b) = self.two()?;
                Pred::Le(a, b)
            }
            "member" => {
                let (a, b) = self.two()?;
                Pred::Member(a, b)
            }
            "subbag" => {
                let (a, b) = self.two()?;
                Pred::SubBag(a, b)
            }
            "not" => Pred::Not(Box::new(self.pred()?)),
            "and" => {
                let a = self.pred()?;
                self.expect(b',')?;
                let b = self.pred()?;
                a.and(b)
            }
            "or" => {
                let a = self.pred()?;
                self.expect(b',')?;
                let b = self.pred()?;
                a.or(b)
            }
            other => return Err(self.err(&format!("unknown predicate {other}"))),
        };
        self.expect(b')')?;
        Ok(out)
    }

    /// `bag{ [a,1], [b,2]*3 }` — rows with optional multiplicities.
    fn bag_literal(&mut self) -> Result<Expr, ExprParseError> {
        self.expect(b'{')?;
        let mut bag = Bag::new();
        loop {
            if self.eat(b'}') {
                break;
            }
            let row = self.row()?;
            let mult = if self.eat(b'*') {
                Natural::from(self.number()?)
            } else {
                Natural::one()
            };
            bag.insert_with_multiplicity(row, mult);
            if !self.eat(b',') {
                self.expect(b'}')?;
                break;
            }
        }
        Ok(Expr::Lit(Value::Bag(bag)))
    }

    fn row(&mut self) -> Result<Value, ExprParseError> {
        self.expect(b'[')?;
        let mut fields = Vec::new();
        loop {
            if self.eat(b']') {
                break;
            }
            fields.push(self.atom()?);
            if !self.eat(b',') {
                self.expect(b']')?;
                break;
            }
        }
        Ok(Value::Tuple(fields.into()))
    }

    fn atom(&mut self) -> Result<Value, ExprParseError> {
        match self.peek() {
            Some(b'\'') => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(self.err("unterminated string"));
                }
                let text = &self.input[start..self.pos];
                self.pos += 1;
                Ok(Value::sym(text))
            }
            Some(c) if c.is_ascii_digit() => Ok(Value::int(self.number()? as i64)),
            _ => Ok(Value::sym(self.ident()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_bag;
    use crate::schema::Database;

    fn db() -> Database {
        let g = Bag::from_values([
            Value::tuple([Value::sym("a"), Value::sym("b")]),
            Value::tuple([Value::sym("b"), Value::sym("c")]),
        ]);
        Database::new().with("G", g)
    }

    #[test]
    fn variables_and_operators() {
        let e = parse_expr("unionp(G, G)").unwrap();
        let out = eval_bag(&e, &db()).unwrap();
        assert_eq!(out.cardinality(), Natural::from(4u64));
    }

    #[test]
    fn nested_functional_calls() {
        let e = parse_expr("project(select(x, eq(attr(x,2), attr(x,3)), product(G, G)), 1, 4)")
            .unwrap();
        let out = eval_bag(&e, &db()).unwrap();
        assert!(out.contains(&Value::tuple([Value::sym("a"), Value::sym("c")])));
    }

    #[test]
    fn bag_literals_with_multiplicities() {
        let e = parse_expr("bag{ [a, 1], [b, 2]*3 }").unwrap();
        let out = eval_bag(&e, &Database::new()).unwrap();
        assert_eq!(out.cardinality(), Natural::from(4u64));
        assert_eq!(
            out.multiplicity(&Value::tuple([Value::sym("b"), Value::int(2)])),
            Natural::from(3u64)
        );
    }

    #[test]
    fn aggregates_and_int() {
        let e = parse_expr("count(G)").unwrap();
        let out = eval_bag(&e, &db()).unwrap();
        assert_eq!(
            crate::derived::decode_int(&Value::Bag(out)),
            Some(Natural::from(2u64))
        );
        let e = parse_expr("sum(singleton(int(5)))").unwrap();
        let out = eval_bag(&e, &Database::new()).unwrap();
        assert_eq!(
            crate::derived::decode_int(&Value::Bag(out)),
            Some(Natural::from(5u64))
        );
    }

    #[test]
    fn powerset_map_ifp() {
        assert!(parse_expr("powerset(G)").is_ok());
        assert!(parse_expr("map(x, singleton(x), G)").is_ok());
        assert!(parse_expr("ifp(T, T, G)").is_ok());
        assert!(parse_expr("nest(G, 1)").is_ok());
        assert!(parse_expr("select(x, true, G)").is_ok());
        assert!(parse_expr("select(x, and(eq(x, x), not(lt(x, x))), G)").is_ok());
    }

    #[test]
    fn string_atoms() {
        let e = parse_expr("bag{ ['hello world', 3] }").unwrap();
        let out = eval_bag(&e, &Database::new()).unwrap();
        assert!(out.contains(&Value::tuple([Value::sym("hello world"), Value::int(3)])));
    }

    #[test]
    fn errors_are_positioned() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("unionp(G)").is_err()); // missing second arg
        assert!(parse_expr("frobnicate(G)").is_err());
        assert!(parse_expr("G extra").is_err());
        assert!(parse_expr("bag{ [a").is_err());
        assert!(parse_expr("select(x, zap(x), G)").is_err());
    }

    #[test]
    fn parsed_expressions_typecheck() {
        use crate::schema::Schema;
        use crate::typecheck::check;
        use crate::types::Type;
        let schema = Schema::new().with("G", Type::relation(2));
        let e = parse_expr("destroy(powerset(G))").unwrap();
        let analysis = check(&e, &schema).unwrap();
        assert_eq!(analysis.balg_level(), 2);
    }
}
