//! The `:profile EXPR` report — an `EXPLAIN ANALYZE` for BALG.
//!
//! One renderer shared by every surface (balg-cli, balg-server, and the
//! server's serial twin), so the report is byte-equal across them by
//! construction, exactly like `:analyze`. The operator tree comes from
//! the evaluator's span profiler ([`crate::eval::Evaluator::enable_profiling`]);
//! each line carries wall time, the step charge, the output cardinality,
//! and the fast-path tag when a fused/indexed path fired.
//!
//! Wall times are real by default and therefore differ between runs; the
//! byte-equality tests set [`balg_obs::profile::PROFILE_TICKS_ENV`],
//! which switches the profiler to a deterministic counting clock.

use crate::eval::{Evaluator, Limits};
use crate::expr::Expr;
use crate::parse::parse_expr;
use crate::schema::Database;
use crate::value::Value;

/// Parse and profile `text` against `db`. `Err` carries a parse error;
/// evaluation errors render inside the report (the partial operator tree
/// up to the failure is exactly what one wants to see).
pub fn profile_report(text: &str, db: &Database, limits: Limits) -> Result<String, String> {
    let expr = parse_expr(text).map_err(|e| e.to_string())?;
    Ok(profile_expr(&expr, db, limits))
}

/// Profile an already-parsed expression.
pub fn profile_expr(expr: &Expr, db: &Database, limits: Limits) -> String {
    let mut evaluator = Evaluator::new(db, limits);
    evaluator.enable_profiling();
    let result = evaluator.eval(expr);
    let metrics = evaluator.metrics().clone();
    let profiler = evaluator.take_profiler().expect("profiling just enabled");
    let mut out = profiler.render();
    out.push_str(&format!(
        "total: {} \u{2014} {} steps, max {} distinct, max multiplicity {} ({} bits)\n",
        balg_obs::fmt_ns(profiler.total_ns()),
        metrics.steps,
        metrics.max_distinct_elements,
        metrics.max_multiplicity,
        metrics.max_multiplicity_bits(),
    ));
    match result {
        Ok(Value::Bag(bag)) => out.push_str(&format!(
            "result: {} distinct elements, cardinality {}",
            bag.distinct_count(),
            bag.cardinality()
        )),
        Ok(other) => {
            let mut rendered = other.to_string();
            if rendered.len() > 80 {
                rendered.truncate(77);
                rendered.push_str("...");
            }
            out.push_str(&format!("result: {rendered}"));
        }
        Err(e) => out.push_str(&format!("error: {e}")),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Bag;
    use crate::value::Value;

    fn db() -> Database {
        let g = Bag::from_values(
            [("a", "b"), ("b", "c")]
                .iter()
                .map(|(x, y)| Value::tuple([Value::sym(x), Value::sym(y)])),
        );
        Database::new().with("G", g)
    }

    const JOIN: &str = "project(select(x, eq(attr(x,2), attr(x,3)), product(G, G)), 1, 4)";

    #[test]
    fn report_carries_tree_steps_and_result() {
        let report = profile_report(JOIN, &db(), Limits::default());
        let report = report.expect("parses");
        // The chain head frame, its two base scans, and the fast-path tag.
        assert!(report.contains("base G"), "{report}");
        assert!(report.contains("steps"), "{report}");
        assert!(
            report.contains("[indexed-join]") || report.contains("[hash-join]"),
            "{report}"
        );
        assert!(report.contains("total: "), "{report}");
        assert!(report.contains("result: 1 distinct elements"), "{report}");
    }

    #[test]
    fn parse_errors_are_err_and_eval_errors_render_in_report() {
        assert!(profile_report("project(", &db(), Limits::default()).is_err());
        let limits = Limits {
            max_steps: 1,
            ..Limits::default()
        };
        let report = profile_report("dedup(G)", &db(), limits).expect("parses");
        assert!(
            report.contains("error: step budget of 1 exhausted"),
            "{report}"
        );
    }

    #[test]
    fn profiling_is_inert() {
        let expr = parse_expr(JOIN).unwrap();
        let db = db();
        let (plain, plain_metrics) = crate::eval::eval_with_metrics(&expr, &db, Limits::default());
        let mut profiled = Evaluator::new(&db, Limits::default());
        profiled.enable_profiling();
        let presult = profiled.eval(&expr);
        assert_eq!(plain.unwrap(), presult.unwrap());
        assert_eq!(plain_metrics.steps, profiled.metrics().steps);
    }
}
