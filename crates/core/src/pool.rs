//! A vendored, hand-rolled work-stealing thread pool (std-only).
//!
//! The evaluator's parallel operator kernels ([`crate::par`]) need a way to
//! run a small, statically known set of independent chunk jobs and collect
//! their results **in submission order**. This module provides exactly that
//! and nothing more:
//!
//! * one global pool, built lazily on first use ([`global`]);
//! * per-worker deques — the owner pops from the back, thieves steal from
//!   the front;
//! * the *submitting* thread does not block idly: while it waits for its
//!   batch it steals and runs pending jobs itself, so nested `run` calls
//!   (a parallel operator inside a parallel IFP body) cannot deadlock and
//!   the pool degrades gracefully to serial execution on a 1-core host;
//! * results are collected by job index, so scheduling order never leaks
//!   into observable output order.
//!
//! Determinism note: nothing in this module influences *what* the kernels
//! compute — partition boundaries are chosen by [`crate::par`] as a pure
//! function of the requested chunk count, never of worker count, load, or
//! timing. The pool only decides *where* each chunk runs.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// A unit of work queued on the pool.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// Lock a mutex, recovering from poisoning.
///
/// A panic inside a task is caught and re-thrown on the submitting thread,
/// but the brief window where a queue lock could be poisoned must not take
/// the whole pool down.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct PoolShared {
    /// One deque per worker; the submitting thread injects round-robin.
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Sleep/wake signalling for idle workers.
    idle: Mutex<()>,
    bell: Condvar,
    /// Round-robin injection cursor.
    next: AtomicUsize,
}

impl PoolShared {
    /// Try to take one task: first from `home`, then by stealing.
    fn take(&self, home: usize) -> Option<Task> {
        if let Some(t) = lock(&self.queues[home]).pop_back() {
            return Some(t);
        }
        let n = self.queues.len();
        for off in 1..n {
            let victim = (home + off) % n;
            if let Some(t) = lock(&self.queues[victim]).pop_front() {
                return Some(t);
            }
        }
        None
    }

    fn inject(&self, task: Task) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        lock(&self.queues[slot]).push_back(task);
        self.bell.notify_all();
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Most callers should use the process-wide [`global`] pool; constructing a
/// private pool is supported for tests.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl ThreadPool {
    /// Build a pool with `workers` background threads (clamped to `1..=64`).
    ///
    /// Worker threads park when idle and live for the life of the process;
    /// the pool is intended to be built once and shared.
    pub fn new(workers: usize) -> Self {
        let workers = workers.clamp(1, 64);
        let shared = Arc::new(PoolShared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            idle: Mutex::new(()),
            bell: Condvar::new(),
            next: AtomicUsize::new(0),
        });
        for home in 0..workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("balg-pool-{home}"))
                .spawn(move || worker_loop(&shared, home))
                .expect("spawn balg pool worker");
        }
        ThreadPool { shared, workers }
    }

    /// Number of background worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Run a batch of jobs and return their results in submission order.
    ///
    /// The calling thread participates: while the batch is outstanding it
    /// steals and runs queued tasks (its own or anyone's), so this is safe
    /// to call from inside a pool task and never deadlocks. A panic in any
    /// job is re-thrown here after the rest of the batch has settled.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // Nothing to overlap; skip the queue entirely.
            let mut jobs = jobs;
            return vec![jobs.pop().expect("one job")()];
        }

        type Slot<T> = Option<std::thread::Result<T>>;
        let results: Arc<Mutex<Vec<Slot<T>>>> =
            Arc::new(Mutex::new((0..n).map(|_| None).collect()));
        let latch = Arc::new((Mutex::new(n), Condvar::new()));

        for (ix, job) in jobs.into_iter().enumerate() {
            let results = Arc::clone(&results);
            let latch = Arc::clone(&latch);
            self.shared.inject(Box::new(move || {
                let out = catch_unwind(AssertUnwindSafe(job));
                lock(&results)[ix] = Some(out);
                let (count, done) = &*latch;
                *lock(count) -= 1;
                done.notify_all();
            }));
        }

        // Help until the whole batch has completed.
        let (count, done) = &*latch;
        loop {
            if *lock(count) == 0 {
                break;
            }
            if let Some(task) = self
                .shared
                .take(self.shared.next.load(Ordering::Relaxed) % self.workers)
            {
                task();
                continue;
            }
            let guard = lock(count);
            if *guard == 0 {
                break;
            }
            // Short timeout: a task finishing on a worker notifies `done`,
            // but new *stealable* work appearing only rings `bell`.
            let _ = done
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap_or_else(PoisonError::into_inner);
        }

        let collected = std::mem::take(&mut *lock(&results));
        let mut out = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for slot in collected {
            match slot.expect("batch slot filled") {
                Ok(v) => out.push(v),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        out
    }
}

fn worker_loop(shared: &PoolShared, home: usize) {
    loop {
        if let Some(task) = shared.take(home) {
            task();
            continue;
        }
        let guard = lock(&shared.idle);
        // Re-check under the idle lock to avoid missing a wakeup, then park.
        let _ = shared
            .bell
            .wait_timeout(guard, Duration::from_millis(50))
            .unwrap_or_else(PoisonError::into_inner);
    }
}

/// Configured default parallelism (chunk count) for new evaluators: 0 means
/// "not yet resolved".
static DEFAULT_PARALLELISM: AtomicUsize = AtomicUsize::new(0);

/// Resolve the process-wide default parallelism.
///
/// Resolution order: an explicit [`set_default_parallelism`] call (e.g. the
/// `--threads` CLI flag), else the `BALG_THREADS` environment variable, else
/// [`std::thread::available_parallelism`]. The result is the number of
/// *chunks* operators split work into by default; a value of `1` disables
/// parallel execution entirely.
pub fn default_parallelism() -> usize {
    let cur = DEFAULT_PARALLELISM.load(Ordering::Relaxed);
    if cur != 0 {
        return cur;
    }
    let resolved = std::env::var("BALG_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .clamp(1, 64);
    // Racing first calls resolve identically; a concurrent explicit
    // `set_default_parallelism` wins.
    let _ = DEFAULT_PARALLELISM.compare_exchange(0, resolved, Ordering::Relaxed, Ordering::Relaxed);
    DEFAULT_PARALLELISM.load(Ordering::Relaxed)
}

/// Override the process-wide default parallelism (clamped to `1..=64`).
///
/// Affects evaluators constructed *after* the call; existing evaluators keep
/// the chunk count they captured (or had set explicitly).
pub fn set_default_parallelism(n: usize) {
    DEFAULT_PARALLELISM.store(n.clamp(1, 64), Ordering::Relaxed);
}

/// The process-wide pool, built on first use.
///
/// Worker count is `min(default_parallelism, available_parallelism)` — on a
/// 1-core host a single worker is spawned and the submitting thread's
/// help-while-waiting loop does most of the running.
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ThreadPool::new(default_parallelism().min(hw.max(1)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn core_values_cross_threads() {
        assert_send_sync::<crate::value::Value>();
        assert_send_sync::<crate::bag::Bag>();
        assert_send_sync::<crate::natural::Natural>();
        assert_send_sync::<crate::zbag::ZBag>();
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = ThreadPool::new(4);
        let jobs: Vec<_> = (0..97u64).map(|i| move || i * i).collect();
        let out = pool.run(jobs);
        assert_eq!(out, (0..97u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn nested_run_does_not_deadlock() {
        let pool = Arc::new(ThreadPool::new(2));
        let inner_pool = Arc::clone(&pool);
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = (0..4u64)
            .map(|i| {
                let p = Arc::clone(&inner_pool);
                Box::new(move || {
                    let inner: Vec<_> = (0..3u64).map(|j| move || i * 10 + j).collect();
                    p.run(inner).into_iter().sum()
                }) as Box<dyn FnOnce() -> u64 + Send>
            })
            .collect();
        let out = pool.run(jobs);
        assert_eq!(out, vec![3, 33, 63, 93]);
    }

    #[test]
    fn single_worker_pool_completes_wide_batches() {
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicU64::new(0));
        let jobs: Vec<_> = (0..64)
            .map(|_| {
                let c = Arc::clone(&counter);
                move || c.fetch_add(1, Ordering::Relaxed)
            })
            .collect();
        let _ = pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = ThreadPool::new(2);
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("chunk failed")),
            Box::new(|| 3),
        ];
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| pool.run(jobs)));
        assert!(err.is_err());
    }

    #[test]
    fn default_parallelism_is_at_least_one() {
        assert!(default_parallelism() >= 1);
    }
}
