//! Static analysis of BALG expressions: one abstract-interpretation pass
//! computing, per subexpression, the facts every other layer consumes.
//!
//! The source paper's central observation is that tractability of the bag
//! algebra is a *static* property of an expression — which operators it
//! composes — not of the data it runs on. This module turns that
//! observation into a reusable pass over [`Expr`] that, given a
//! [`Schema`], derives four kinds of facts in a single traversal:
//!
//! 1. **Shape/type inference** — the output [`Type`], tuple arities and
//!    bag nesting of every subexpression. Out-of-bounds `αᵢ`, the always
//!    invalid `α₀`, and arity mismatches are rejected *statically* with
//!    precise diagnostics ([`AnalyzeError`]) instead of surfacing as
//!    runtime `BagError`s mid-evaluation.
//! 2. **Set-ness certificates** — duplicate-freeness of the output bag,
//!    derived from the lattice the Proposition 4.2 embedding used to
//!    reason about locally: on duplicate-free inputs `∪` (max), `∩`, `−`
//!    (monus), `β`, `σ`, `ε`, `nest`, `P`, and even `P_b` (binomial
//!    weights `C(1, j) = 1`) produce duplicate-free outputs, while `∪⁺`,
//!    `×` (unless both element arities are statically known — uniform
//!    concatenation is injective), `MAP` (images can collide), and `δ`
//!    (inner bags can overlap) can manufacture duplicates.
//! 3. **Per-base linearity** — how the result depends on each database
//!    bag: [`Linearity::Unread`], [`Linearity::Linear`] (deltas propagate
//!    additively), [`Linearity::Bilinear`] (through one side of a `×` or
//!    equi-join), or [`Linearity::NonLinear`] (a non-linear operator or a
//!    λ body reads the base — the *affected-body* condition the
//!    incremental engine falls back on). The classification mirrors the
//!    delta-strategy dispatch of `balg-incremental` exactly, and the
//!    differential suite asserts they agree on random update streams.
//! 4. **Tractability class** — a polynomial degree bound when the
//!    expression composes only the PTIME operators, or a static
//!    `TooLarge`-risk classification ([`CostClass::Exponential`] /
//!    [`CostClass::HyperExponential`]) when powerset, powerbag, or an
//!    unbounded fixpoint can blow up (Sections 5–6 of the paper).
//!
//! The "cannot error" certificate ([`Facts::cannot_error`]) covers the
//! *shape* errors (`BagError`, unbound variables): when every inferred
//! type is concrete, evaluation on a schema-conforming database can only
//! fail by exceeding a resource budget, never with a shape error.
//! Soundness of all four fact families is gated by the differential
//! proptest in `tests/analyze_differential.rs`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::expr::{Expr, Pred, Var};
use crate::schema::Schema;
use crate::typecheck::TypeError;
use crate::types::Type;
use crate::value::Value;

/// Why an expression is statically rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyzeError {
    /// Attribute projection `α₀`: indices are 1-based, so `α₀` errors on
    /// every input regardless of its type.
    AttrIndexZero,
    /// A shape/type error (arity mismatch, out-of-bounds attribute,
    /// operator applied to the wrong shape, unbound variable).
    Type(TypeError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::AttrIndexZero => {
                f.write_str("attribute α0 is invalid: attribute indices are 1-based")
            }
            AnalyzeError::Type(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<TypeError> for AnalyzeError {
    fn from(e: TypeError) -> AnalyzeError {
        AnalyzeError::Type(e)
    }
}

/// How the result of an expression depends on one database bag.
///
/// Ordered by "how much work an update to the base costs": deltas to a
/// [`Linearity::Linear`] or [`Linearity::Bilinear`] base propagate as
/// linear delta operations in the incremental engine; a
/// [`Linearity::NonLinear`] base forces operator recomputation somewhere
/// on the path to the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Linearity {
    /// The base does not occur free in the expression.
    Unread,
    /// Every path from the base to the root passes only through
    /// delta-additive operators (`∪⁺`, `MAP`/`σ` with unaffected bodies,
    /// `δ`).
    Linear,
    /// The base feeds a Cartesian product or equi-join; deltas still
    /// propagate without recomputation (`Δ(A×B) = ΔA×B ∪⁺ A×ΔB ∪⁺
    /// ΔA×ΔB`).
    Bilinear,
    /// Some path passes through a non-linear operator (`−`, `∪`, `∩`,
    /// `ε`, `P`, `P_b`, `nest`, `IFP`, a scalar constructor) or the base
    /// is read inside a λ body — the affected-body condition.
    NonLinear,
}

impl fmt::Display for Linearity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Linearity::Unread => "unread",
            Linearity::Linear => "linear",
            Linearity::Bilinear => "bilinear",
            Linearity::NonLinear => "non-linear",
        })
    }
}

/// The asymptotic size/time class of an expression in the size of its
/// database inputs — the paper's tractability parameter, made static.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Output size and evaluation time are `O(n^d)` for the given degree
    /// bound `d`.
    Polynomial(usize),
    /// A powerset (or unbounded fixpoint) can produce exponentially many
    /// elements — a static `TooLarge` risk.
    Exponential,
    /// Powerbag output (`2^|B|` counting multiplicities, Definition 5.1)
    /// or nested power operators — hyper-exponential blowup.
    HyperExponential,
}

impl CostClass {
    /// `true` when evaluation can exceed any polynomial bound — the
    /// static `TooLarge`-risk warning surfaced by `:analyze` and the SQL
    /// `CREATE VIEW` gate.
    pub fn blowup_risk(&self) -> bool {
        !matches!(self, CostClass::Polynomial(_))
    }

    fn max(self, other: CostClass) -> CostClass {
        match (self, other) {
            (CostClass::HyperExponential, _) | (_, CostClass::HyperExponential) => {
                CostClass::HyperExponential
            }
            (CostClass::Exponential, _) | (_, CostClass::Exponential) => CostClass::Exponential,
            (CostClass::Polynomial(a), CostClass::Polynomial(b)) => CostClass::Polynomial(a.max(b)),
        }
    }

    fn add_degree(self, other: CostClass) -> CostClass {
        match (self, other) {
            (CostClass::Polynomial(a), CostClass::Polynomial(b)) => CostClass::Polynomial(a + b),
            _ => self.max(other),
        }
    }

    /// The class after one powerset on top of `self`.
    fn powered(self) -> CostClass {
        match self {
            CostClass::Polynomial(_) => CostClass::Exponential,
            _ => CostClass::HyperExponential,
        }
    }
}

impl fmt::Display for CostClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostClass::Polynomial(d) => write!(f, "polynomial (degree ≤ {d})"),
            CostClass::Exponential => f.write_str("exponential"),
            CostClass::HyperExponential => f.write_str("hyper-exponential"),
        }
    }
}

/// The facts the analyzer certifies about one expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Facts {
    /// The inferred output type.
    pub ty: Type,
    /// `true` when the output bag is certified duplicate-free (every
    /// multiplicity exactly one). Vacuously `true` for non-bag outputs.
    pub duplicate_free: bool,
    /// `true` when evaluation on a schema-conforming database cannot
    /// raise a shape error (unbound variable, `BagError`, wrong-shape
    /// operand) — only resource budgets can stop it.
    pub cannot_error: bool,
    /// The tractability class.
    pub cost: CostClass,
    /// Per-base linearity, for every base in the schema that occurs free
    /// (absent bases are [`Linearity::Unread`]).
    pub linearity: BTreeMap<Var, Linearity>,
    /// Bases read inside some λ body or predicate — the affected-body
    /// condition that forces the incremental engine to recompute the
    /// enclosing `MAP`/`σ`/`IFP`.
    pub lambda_affected: BTreeSet<Var>,
}

impl Facts {
    /// The linearity class of `base` ([`Linearity::Unread`] when absent).
    pub fn linearity_of(&self, base: &str) -> Linearity {
        self.linearity
            .get(base)
            .copied()
            .unwrap_or(Linearity::Unread)
    }

    /// `true` when every base the expression reads is linear or bilinear
    /// — an update to any base propagates as delta operations only.
    pub fn fully_linear(&self) -> bool {
        self.linearity
            .values()
            .all(|&class| class <= Linearity::Bilinear)
    }
}

/// Analyze `expr` against `schema`: full type inference plus set-ness,
/// linearity, and tractability facts, in one pass.
pub fn analyze(expr: &Expr, schema: &Schema) -> Result<Facts, AnalyzeError> {
    let mut pass = Pass {
        schema,
        env: Vec::new(),
        all_concrete: true,
    };
    let node = pass.infer(expr)?;
    let all_concrete = pass.all_concrete;
    Ok(Facts {
        ty: node.ty,
        duplicate_free: node.set,
        cannot_error: all_concrete,
        cost: node.cost,
        linearity: base_linearity(expr),
        lambda_affected: lambda_affected(expr),
    })
}

/// Syntactic duplicate-freeness: the set-ness lattice without type
/// information, usable where no [`Schema`] is available (the
/// Proposition 4.2 embedding builds expressions bottom-up and seals each
/// relation-valued node with `ε` exactly when this returns `false`).
///
/// Sound but weaker than [`analyze`]: without element arities a `×` of
/// two sets cannot be certified (mixed-arity concatenations can
/// collide).
pub fn certified_duplicate_free(expr: &Expr) -> bool {
    set_like(expr, &mut Vec::new())
}

/// Like [`certified_duplicate_free`], with the named variables assumed
/// duplicate-free — the hook for callers that maintain a set invariant
/// the lattice cannot see, such as the Proposition 4.2 embedding, whose
/// λ-bound values are drawn from deeply deduplicated databases.
pub fn certified_duplicate_free_assuming(expr: &Expr, set_vars: &[Var]) -> bool {
    let mut env: Vec<(Var, bool)> = set_vars.iter().map(|v| (v.clone(), true)).collect();
    set_like(expr, &mut env)
}

fn set_like(expr: &Expr, set_env: &mut Vec<(Var, bool)>) -> bool {
    match expr {
        // Database bags carry arbitrary multiplicities; λ-bound values
        // look up the set-ness their binder established.
        Expr::Var(name) => set_env
            .iter()
            .rev()
            .find(|(bound, _)| bound == name)
            .is_some_and(|(_, set)| *set),
        Expr::Lit(value) => match value {
            Value::Bag(bag) => bag.iter().all(|(_, mult)| mult.is_one()),
            // Non-bag constants are vacuously duplicate-free.
            _ => true,
        },
        // 1 + 1 = 2: additive union manufactures duplicates.
        Expr::AdditiveUnion(_, _) => false,
        // sup(1, 1) = 1.
        Expr::MaxUnion(a, b) => set_like(a, set_env) && set_like(b, set_env),
        // inf(m, 1) ≤ 1: either side being a set suffices.
        Expr::Intersect(a, b) => set_like(a, set_env) || set_like(b, set_env),
        // Monus never raises a multiplicity: the left side alone decides.
        Expr::Subtract(a, _) => set_like(a, set_env),
        // Objects, not bags: vacuously duplicate-free.
        Expr::Tuple(_) | Expr::Attr(_, _) => true,
        // β(o) = ⟦o⟧ — one element, once.
        Expr::Singleton(_) => true,
        // Without arity information, ⟦[a]⟧ × ⟦[b,c]⟧ and ⟦[a,b]⟧ × ⟦[c]⟧
        // both concatenate to [a,b,c]; the typed analyzer sharpens this.
        Expr::Product(_, _) => false,
        // Each distinct subbag occurs exactly once in P(B).
        Expr::Powerset(_) => true,
        // P_b weights subbags by Π C(mᵢ, jᵢ), which is 1 whenever every
        // mᵢ = 1 — the powerbag of a set is a set (Definition 5.1).
        Expr::Powerbag(e) => set_like(e, set_env),
        // Inner bags can overlap: δ(⟦⟦a⟧, ⟦a⟧⟧) = ⟦a²⟧.
        Expr::Destroy(_) => false,
        // Distinct elements can map to one image.
        Expr::Map { .. } => false,
        // Selection only drops occurrences.
        Expr::Select { input, .. } => set_like(input, set_env),
        Expr::Dedup(_) => true,
        // Each group key appears exactly once.
        Expr::Nest { .. } => true,
        // T(B) = body(B) ∪ B is max-union: a set seed whose body maps
        // sets to sets stays a set at every iteration.
        Expr::Ifp { var, body, input } => {
            let seed = set_like(input, set_env);
            set_env.push((var.clone(), seed));
            let preserved = set_like(body, set_env);
            set_env.pop();
            seed && preserved
        }
    }
}

/// Per-base linearity classification, purely syntactic (no schema): how
/// an update to each free base propagates through the expression. The
/// rules mirror the incremental engine's per-operator delta dispatch, so
/// a base classified [`Linearity::Linear`]/[`Linearity::Bilinear`] never
/// triggers an operator recomputation there.
pub fn base_linearity(expr: &Expr) -> BTreeMap<Var, Linearity> {
    classify(expr, &mut Vec::new())
}

/// The bases read inside some λ body or selection/fixpoint predicate —
/// updates to them leave delta form and force body recomputation.
pub fn lambda_affected(expr: &Expr) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    collect_lambda_reads(expr, &mut Vec::new(), &mut out);
    out
}

fn collect_lambda_reads(expr: &Expr, bound: &mut Vec<Var>, out: &mut BTreeSet<Var>) {
    match expr {
        Expr::Var(_) | Expr::Lit(_) => {}
        Expr::AdditiveUnion(a, b)
        | Expr::Subtract(a, b)
        | Expr::MaxUnion(a, b)
        | Expr::Intersect(a, b)
        | Expr::Product(a, b) => {
            collect_lambda_reads(a, bound, out);
            collect_lambda_reads(b, bound, out);
        }
        Expr::Tuple(fields) => {
            for field in fields {
                collect_lambda_reads(field, bound, out);
            }
        }
        Expr::Singleton(e)
        | Expr::Powerset(e)
        | Expr::Powerbag(e)
        | Expr::Attr(e, _)
        | Expr::Destroy(e)
        | Expr::Dedup(e) => collect_lambda_reads(e, bound, out),
        Expr::Map { var, body, input } | Expr::Ifp { var, body, input } => {
            collect_lambda_reads(input, bound, out);
            out.extend(free_with(body, bound, var));
            bound.push(var.clone());
            collect_lambda_reads(body, bound, out);
            bound.pop();
        }
        Expr::Select { var, pred, input } => {
            collect_lambda_reads(input, bound, out);
            pred.visit_exprs(&mut |e| {
                out.extend(free_with(e, bound, var));
                bound.push(var.clone());
                collect_lambda_reads(e, bound, out);
                bound.pop();
            });
        }
        Expr::Nest { input, .. } => collect_lambda_reads(input, bound, out),
    }
}

/// Free variables of `expr` that are bases: not in `bound` and not the
/// extra binder `var`.
fn free_with(expr: &Expr, bound: &[Var], var: &Var) -> Vec<Var> {
    expr.free_vars()
        .into_iter()
        .filter(|name| name != var && !bound.contains(name))
        .collect()
}

fn classify(expr: &Expr, bound: &mut Vec<Var>) -> BTreeMap<Var, Linearity> {
    match expr {
        Expr::Var(name) => {
            let mut map = BTreeMap::new();
            if !bound.contains(name) {
                map.insert(name.clone(), Linearity::Linear);
            }
            map
        }
        Expr::Lit(_) => BTreeMap::new(),
        // Δ(a ∪⁺ b) = Δa ∪⁺ Δb: linearity preserved on both sides.
        Expr::AdditiveUnion(a, b) => join(classify(a, bound), classify(b, bound)),
        // Monus, max and min are not delta-additive: the engine
        // recomputes the operator whenever either input changes.
        Expr::Subtract(a, b) | Expr::MaxUnion(a, b) | Expr::Intersect(a, b) => {
            saturate(join(classify(a, bound), classify(b, bound)))
        }
        // Scalar constructors recompute from scratch on any change.
        Expr::Tuple(fields) => {
            let mut map = BTreeMap::new();
            for field in fields {
                map = join(map, classify(field, bound));
            }
            saturate(map)
        }
        Expr::Singleton(e) | Expr::Attr(e, _) => saturate(classify(e, bound)),
        // Δ(a × b) = Δa×b ∪⁺ a×Δb ∪⁺ Δa×Δb: still delta form, but the
        // delta pairs with the *other* side's snapshot — bilinear.
        Expr::Product(a, b) => {
            let map = join(classify(a, bound), classify(b, bound));
            map.into_iter()
                .map(|(base, class)| {
                    let class = if class <= Linearity::Bilinear {
                        Linearity::Bilinear
                    } else {
                        Linearity::NonLinear
                    };
                    (base, class)
                })
                .collect()
        }
        Expr::Powerset(e) | Expr::Powerbag(e) | Expr::Dedup(e) => saturate(classify(e, bound)),
        // δ distributes over ∪⁺: deltas pass straight through.
        Expr::Destroy(e) => classify(e, bound),
        Expr::Map { var, body, input } => {
            let mut map = classify(input, bound);
            // The affected-body condition: a base read inside the λ body
            // changes the *function* being mapped, not just its input.
            for base in free_with(body, bound, var) {
                map.insert(base, Linearity::NonLinear);
            }
            map
        }
        Expr::Select { var, pred, input } => {
            let mut map = classify(input, bound);
            let mut affected = Vec::new();
            pred.visit_exprs(&mut |e| affected.extend(free_with(e, bound, var)));
            for base in affected {
                map.insert(base, Linearity::NonLinear);
            }
            map
        }
        Expr::Nest { input, .. } => saturate(classify(input, bound)),
        Expr::Ifp { var, body, input } => {
            let mut map = saturate(classify(input, bound));
            for base in free_with(body, bound, var) {
                map.insert(base, Linearity::NonLinear);
            }
            map
        }
    }
}

fn join(mut a: BTreeMap<Var, Linearity>, b: BTreeMap<Var, Linearity>) -> BTreeMap<Var, Linearity> {
    for (base, class) in b {
        let entry = a.entry(base).or_insert(Linearity::Unread);
        *entry = (*entry).max(class);
    }
    a
}

fn saturate(map: BTreeMap<Var, Linearity>) -> BTreeMap<Var, Linearity> {
    map.into_keys()
        .map(|base| (base, Linearity::NonLinear))
        .collect()
}

/// Per-node result of the typed pass: output type, set-ness under the
/// typed (arity-sharpened) lattice, and cost class.
struct Node {
    ty: Type,
    set: bool,
    cost: CostClass,
}

struct Pass<'a> {
    schema: &'a Schema,
    /// λ environment: binder, element type, element set-ness.
    env: Vec<(Var, Type, bool)>,
    /// Every type inferred so far (λ bindings included) is concrete —
    /// the precondition of the "cannot error" certificate.
    all_concrete: bool,
}

impl Pass<'_> {
    fn observe(&mut self, ty: &Type) {
        if !ty.is_concrete() {
            self.all_concrete = false;
        }
    }

    fn infer(&mut self, expr: &Expr) -> Result<Node, AnalyzeError> {
        let node = match expr {
            Expr::Var(name) => {
                let bound = self
                    .env
                    .iter()
                    .rev()
                    .find(|(bound, _, _)| bound == name)
                    .map(|(_, ty, set)| (ty.clone(), *set));
                match bound {
                    Some((ty, set)) => Node {
                        ty,
                        set,
                        cost: CostClass::Polynomial(1),
                    },
                    None => {
                        let ty = self
                            .schema
                            .get(name)
                            .cloned()
                            .ok_or_else(|| TypeError::UnboundVariable(name.clone()))?;
                        Node {
                            ty,
                            // Database bags carry arbitrary multiplicities.
                            set: false,
                            cost: CostClass::Polynomial(1),
                        }
                    }
                }
            }
            Expr::Lit(value) => {
                let ty = value.infer_type().ok_or(TypeError::IllTypedLiteral)?;
                let set = match value {
                    Value::Bag(bag) => bag.iter().all(|(_, mult)| mult.is_one()),
                    _ => true,
                };
                Node {
                    ty,
                    set,
                    cost: CostClass::Polynomial(0),
                }
            }
            Expr::AdditiveUnion(a, b) => {
                let (na, nb) = (self.infer(a)?, self.infer(b)?);
                let ty = unify_bags(&na.ty, &nb.ty)?;
                Node {
                    ty,
                    set: false,
                    cost: na.cost.max(nb.cost),
                }
            }
            Expr::MaxUnion(a, b) => {
                let (na, nb) = (self.infer(a)?, self.infer(b)?);
                let ty = unify_bags(&na.ty, &nb.ty)?;
                Node {
                    ty,
                    set: na.set && nb.set,
                    cost: na.cost.max(nb.cost),
                }
            }
            Expr::Intersect(a, b) => {
                let (na, nb) = (self.infer(a)?, self.infer(b)?);
                let ty = unify_bags(&na.ty, &nb.ty)?;
                Node {
                    ty,
                    set: na.set || nb.set,
                    cost: na.cost.max(nb.cost),
                }
            }
            Expr::Subtract(a, b) => {
                let (na, nb) = (self.infer(a)?, self.infer(b)?);
                let ty = unify_bags(&na.ty, &nb.ty)?;
                Node {
                    ty,
                    set: na.set,
                    cost: na.cost.max(nb.cost),
                }
            }
            Expr::Tuple(fields) => {
                let mut tys = Vec::with_capacity(fields.len());
                let mut cost = CostClass::Polynomial(0);
                for field in fields {
                    let node = self.infer(field)?;
                    tys.push(node.ty);
                    cost = cost.max(node.cost);
                }
                Node {
                    ty: Type::Tuple(tys),
                    set: true,
                    cost,
                }
            }
            Expr::Singleton(e) => {
                let node = self.infer(e)?;
                Node {
                    ty: Type::bag(node.ty),
                    set: true,
                    cost: node.cost,
                }
            }
            Expr::Product(a, b) => {
                let (na, nb) = (self.infer(a)?, self.infer(b)?);
                let elem = product_element(&na.ty, &nb.ty)?;
                // With both element arities statically known, tuple
                // concatenation is injective: a product of sets is a set.
                let arities_known = matches!(na.ty.element(), Some(Type::Tuple(_)))
                    && matches!(nb.ty.element(), Some(Type::Tuple(_)));
                Node {
                    ty: Type::bag(elem),
                    set: na.set && nb.set && arities_known,
                    cost: na.cost.add_degree(nb.cost),
                }
            }
            Expr::Powerset(e) => {
                let node = self.infer(e)?;
                require_bag(&node.ty)?;
                Node {
                    ty: Type::bag(node.ty),
                    set: true,
                    cost: node.cost.powered(),
                }
            }
            Expr::Powerbag(e) => {
                let node = self.infer(e)?;
                require_bag(&node.ty)?;
                Node {
                    ty: Type::bag(node.ty),
                    set: node.set,
                    // 2^|B| counting multiplicities (Definition 5.1):
                    // hyper-exponential in the representation size.
                    cost: CostClass::HyperExponential,
                }
            }
            Expr::Attr(e, index) => {
                if *index == 0 {
                    return Err(AnalyzeError::AttrIndexZero);
                }
                let node = self.infer(e)?;
                let ty = match &node.ty {
                    Type::Tuple(fields) => {
                        fields
                            .get(*index - 1)
                            .cloned()
                            .ok_or(TypeError::BadAttribute {
                                index: *index,
                                ty: node.ty.clone(),
                            })?
                    }
                    Type::Unknown => Type::Unknown,
                    other => {
                        return Err(AnalyzeError::Type(TypeError::BadAttribute {
                            index: *index,
                            ty: other.clone(),
                        }))
                    }
                };
                // A projected field of bag type has unknown multiplicities.
                let set = !matches!(ty, Type::Bag(_) | Type::Unknown);
                Node {
                    ty,
                    set,
                    cost: node.cost,
                }
            }
            Expr::Destroy(e) => {
                let node = self.infer(e)?;
                let ty = match &node.ty {
                    Type::Bag(inner) => match inner.as_ref() {
                        Type::Bag(t) => Type::bag((**t).clone()),
                        Type::Unknown => Type::bag(Type::Unknown),
                        _ => return Err(TypeError::DestroyNeedsNestedBag(node.ty.clone()).into()),
                    },
                    Type::Unknown => Type::bag(Type::Unknown),
                    other => return Err(TypeError::NotABag(other.clone()).into()),
                };
                Node {
                    ty,
                    set: false,
                    cost: node.cost,
                }
            }
            Expr::Map { var, body, input } => {
                let nin = self.infer(input)?;
                let elem = element_of(&nin.ty)?;
                self.observe(&elem);
                // Element-level set-ness is not tracked: conservative.
                self.env.push((var.clone(), elem, false));
                let nbody = self.infer(body);
                self.env.pop();
                let nbody = nbody?;
                Node {
                    ty: Type::bag(nbody.ty),
                    set: false,
                    cost: nin.cost.add_degree(nbody.cost),
                }
            }
            Expr::Select { var, pred, input } => {
                let nin = self.infer(input)?;
                let elem = element_of(&nin.ty)?;
                self.observe(&elem);
                self.env.push((var.clone(), elem, false));
                let pcost = self.infer_pred(pred);
                self.env.pop();
                let pcost = pcost?;
                Node {
                    ty: nin.ty,
                    set: nin.set,
                    cost: nin.cost.add_degree(pcost),
                }
            }
            Expr::Dedup(e) => {
                let node = self.infer(e)?;
                require_bag(&node.ty)?;
                Node {
                    ty: node.ty,
                    set: true,
                    cost: node.cost,
                }
            }
            Expr::Nest { group, input } => {
                let node = self.infer(input)?;
                let ty = nest_type(group, &node.ty)?;
                Node {
                    ty,
                    set: true,
                    cost: node.cost,
                }
            }
            Expr::Ifp { var, body, input } => {
                let nin = self.infer(input)?;
                require_bag(&nin.ty)?;
                self.env.push((var.clone(), nin.ty.clone(), nin.set));
                let nbody = self.infer(body);
                self.env.pop();
                let nbody = nbody?;
                let ty = nin
                    .ty
                    .unify(&nbody.ty)
                    .ok_or_else(|| TypeError::IfpBodyMismatch(nbody.ty.clone(), nin.ty.clone()))?;
                Node {
                    ty,
                    // A set seed whose body preserves set-ness stays a
                    // set under T(B) = body(B) ∪ B (max-union).
                    set: nin.set && nbody.set,
                    // Multiplicities can double every iteration.
                    cost: CostClass::Exponential.max(nin.cost).max(nbody.cost),
                }
            }
        };
        self.observe(&node.ty);
        Ok(node)
    }

    fn infer_pred(&mut self, pred: &Pred) -> Result<CostClass, AnalyzeError> {
        match pred {
            Pred::True => Ok(CostClass::Polynomial(0)),
            Pred::Eq(a, b) | Pred::Lt(a, b) | Pred::Le(a, b) => {
                let (na, nb) = (self.infer(a)?, self.infer(b)?);
                if na.ty.unify(&nb.ty).is_none() {
                    return Err(TypeError::Incompatible(na.ty, nb.ty).into());
                }
                Ok(na.cost.max(nb.cost))
            }
            Pred::Member(a, b) => {
                let (na, nb) = (self.infer(a)?, self.infer(b)?);
                let elem = element_of(&nb.ty)?;
                if na.ty.unify(&elem).is_none() {
                    return Err(TypeError::Incompatible(na.ty, elem).into());
                }
                Ok(na.cost.max(nb.cost))
            }
            Pred::SubBag(a, b) => {
                let (na, nb) = (self.infer(a)?, self.infer(b)?);
                require_bag(&na.ty)?;
                require_bag(&nb.ty)?;
                if na.ty.unify(&nb.ty).is_none() {
                    return Err(TypeError::Incompatible(na.ty, nb.ty).into());
                }
                Ok(na.cost.max(nb.cost))
            }
            Pred::Not(p) => self.infer_pred(p),
            Pred::And(a, b) | Pred::Or(a, b) => {
                let ca = self.infer_pred(a)?;
                let cb = self.infer_pred(b)?;
                Ok(ca.max(cb))
            }
        }
    }
}

fn unify_bags(a: &Type, b: &Type) -> Result<Type, AnalyzeError> {
    require_bag(a)?;
    require_bag(b)?;
    a.unify(b)
        .ok_or_else(|| TypeError::Incompatible(a.clone(), b.clone()).into())
}

fn require_bag(ty: &Type) -> Result<(), AnalyzeError> {
    match ty {
        Type::Bag(_) | Type::Unknown => Ok(()),
        other => Err(TypeError::NotABag(other.clone()).into()),
    }
}

fn element_of(ty: &Type) -> Result<Type, AnalyzeError> {
    match ty {
        Type::Bag(inner) => Ok((**inner).clone()),
        Type::Unknown => Ok(Type::Unknown),
        other => Err(TypeError::NotABag(other.clone()).into()),
    }
}

fn product_element(ta: &Type, tb: &Type) -> Result<Type, AnalyzeError> {
    let fields_of = |ty: &Type| -> Result<Option<Vec<Type>>, AnalyzeError> {
        match ty {
            Type::Bag(inner) => match inner.as_ref() {
                Type::Tuple(fields) => Ok(Some(fields.clone())),
                Type::Unknown => Ok(None),
                _ => Err(TypeError::NotATupleBag(ty.clone()).into()),
            },
            Type::Unknown => Ok(None),
            other => Err(TypeError::NotABag(other.clone()).into()),
        }
    };
    match (fields_of(ta)?, fields_of(tb)?) {
        (Some(mut left), Some(right)) => {
            left.extend(right);
            Ok(Type::Tuple(left))
        }
        _ => Ok(Type::Unknown),
    }
}

fn nest_type(group: &[usize], tin: &Type) -> Result<Type, AnalyzeError> {
    if group.contains(&0) {
        return Err(AnalyzeError::AttrIndexZero);
    }
    let fields = match tin {
        Type::Bag(inner) => match inner.as_ref() {
            Type::Tuple(fields) => Some(fields.clone()),
            Type::Unknown => None,
            _ => return Err(TypeError::NotATupleBag(tin.clone()).into()),
        },
        Type::Unknown => None,
        other => return Err(TypeError::NotABag(other.clone()).into()),
    };
    match fields {
        None => Ok(Type::bag(Type::Unknown)),
        Some(fields) => {
            let mut key = Vec::with_capacity(group.len() + 1);
            for &ix in group {
                let field = fields.get(ix - 1).ok_or(TypeError::BadAttribute {
                    index: ix,
                    ty: Type::Tuple(fields.clone()),
                })?;
                key.push(field.clone());
            }
            let residual: Vec<Type> = fields
                .iter()
                .enumerate()
                .filter(|(i, _)| !group.contains(&(i + 1)))
                .map(|(_, t)| t.clone())
                .collect();
            key.push(Type::bag(Type::Tuple(residual)));
            Ok(Type::bag(Type::Tuple(key)))
        }
    }
}

/// Render the `:analyze` report for an already-analyzed expression — the
/// exact text `balg-cli`, `balg-server`, and its serial twin all print,
/// so the three surfaces stay byte-equal by construction.
pub fn render_report(expr: &Expr, facts: &Facts) -> String {
    let mut out = format!("type: {}", facts.ty);
    out.push_str(&format!(
        "\nset: {}",
        if facts.duplicate_free {
            "duplicate-free (certified)"
        } else {
            "may contain duplicates"
        }
    ));
    out.push_str(&format!(
        "\nerrors: {}",
        if facts.cannot_error {
            "cannot error (shape-safe on conforming databases)"
        } else {
            "may error at runtime"
        }
    ));
    out.push_str(&format!("\ncost: {}", facts.cost));
    if facts.cost.blowup_risk() {
        out.push_str(" — TooLarge risk");
    }
    let bases = expr.free_vars();
    if bases.is_empty() {
        out.push_str("\nbases: (none)");
    } else {
        out.push_str("\nbases:");
        for base in bases {
            let class = facts.linearity_of(&base);
            out.push_str(&format!("\n  {base}: {class}"));
            if facts.lambda_affected.contains(&base) {
                out.push_str(" (read in λ body)");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::natural::Natural;

    fn schema() -> Schema {
        Schema::new()
            .with("G", Type::relation(2))
            .with("H", Type::relation(2))
            .with("K", Type::relation(1))
    }

    #[test]
    fn infers_types_and_rejects_alpha_zero() {
        let q = Expr::var("G").project(&[2, 1]);
        let facts = analyze(&q, &schema()).unwrap();
        assert_eq!(facts.ty, Type::relation(2));
        assert!(facts.cannot_error);

        let zero = Expr::var("G").map("x", Expr::var("x").attr(0));
        assert_eq!(
            analyze(&zero, &schema()).unwrap_err(),
            AnalyzeError::AttrIndexZero
        );

        let oob = Expr::var("G").map("x", Expr::var("x").attr(5));
        assert!(matches!(
            analyze(&oob, &schema()).unwrap_err(),
            AnalyzeError::Type(TypeError::BadAttribute { index: 5, .. })
        ));

        let mismatch = Expr::var("G").additive_union(Expr::var("K"));
        assert!(matches!(
            analyze(&mismatch, &schema()).unwrap_err(),
            AnalyzeError::Type(TypeError::Incompatible(_, _))
        ));
    }

    #[test]
    fn set_ness_lattice() {
        let s = schema();
        // ε establishes a set; σ and − preserve it.
        let base = Expr::var("G").dedup();
        assert!(analyze(&base, &s).unwrap().duplicate_free);
        let sel = base.clone().select("x", Pred::True);
        assert!(analyze(&sel, &s).unwrap().duplicate_free);
        let minus = base.clone().subtract(Expr::var("H"));
        assert!(analyze(&minus, &s).unwrap().duplicate_free);
        // ∩ needs only one side; ∪ (max) needs both; ∪⁺ loses it.
        let meet = Expr::var("H").intersect(base.clone());
        assert!(analyze(&meet, &s).unwrap().duplicate_free);
        let sup = base.clone().max_union(Expr::var("H"));
        assert!(!analyze(&sup, &s).unwrap().duplicate_free);
        let plus = base.clone().additive_union(base);
        assert!(!analyze(&plus, &s).unwrap().duplicate_free);
        // Raw database bags are never certified.
        assert!(!analyze(&Expr::var("G"), &s).unwrap().duplicate_free);
    }

    #[test]
    fn typed_product_of_sets_is_a_set() {
        let s = schema();
        let p = Expr::var("G").dedup().product(Expr::var("H").dedup());
        // Known arities on both sides: concatenation is injective.
        assert!(analyze(&p, &s).unwrap().duplicate_free);
        // The untyped lattice cannot certify the same product.
        assert!(!certified_duplicate_free(&p));
        // P and P_b of a set are sets; δ is not.
        let pow = Expr::var("G").powerset();
        assert!(analyze(&pow, &s).unwrap().duplicate_free);
        let pb = Expr::var("G").dedup().powerbag();
        assert!(analyze(&pb, &s).unwrap().duplicate_free);
        let flat = Expr::var("G").powerset().destroy();
        assert!(!analyze(&flat, &s).unwrap().duplicate_free);
    }

    #[test]
    fn syntactic_lattice_matches_embedding_reasoning() {
        // The shapes the Proposition 4.2 embedding seals with ε.
        assert!(!certified_duplicate_free(&Expr::var("R")));
        assert!(certified_duplicate_free(&Expr::var("R").dedup()));
        assert!(certified_duplicate_free(
            &Expr::var("R").dedup().max_union(Expr::var("S").dedup())
        ));
        assert!(certified_duplicate_free(
            &Expr::var("R").dedup().intersect(Expr::var("S"))
        ));
        assert!(certified_duplicate_free(
            &Expr::var("R").dedup().subtract(Expr::var("S"))
        ));
        assert!(certified_duplicate_free(&Expr::var("R").dedup().powerset()));
        assert!(!certified_duplicate_free(
            &Expr::var("R").dedup().product(Expr::var("S").dedup())
        ));
        assert!(!certified_duplicate_free(
            &Expr::var("R").dedup().map("x", Expr::var("x"))
        ));
        assert!(!certified_duplicate_free(
            &Expr::var("R").dedup().powerset().destroy()
        ));
        // Literal bags are inspected directly.
        let ones = Expr::bag_lit([Value::sym("a"), Value::sym("b")]);
        assert!(certified_duplicate_free(&ones));
        let mut dup = crate::bag::Bag::new();
        dup.insert_with_multiplicity(Value::sym("a"), Natural::from(2u64));
        assert!(!certified_duplicate_free(&Expr::lit(Value::Bag(dup))));
    }

    #[test]
    fn linearity_classification() {
        let q = Expr::var("G").additive_union(Expr::var("G"));
        assert_eq!(base_linearity(&q)[&Var::from("G")], Linearity::Linear);

        let join_q = Expr::var("G").product(Expr::var("H")).select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        );
        let map = base_linearity(&join_q);
        assert_eq!(map[&Var::from("G")], Linearity::Bilinear);
        assert_eq!(map[&Var::from("H")], Linearity::Bilinear);

        let minus = Expr::var("G").subtract(Expr::var("H"));
        let map = base_linearity(&minus);
        assert_eq!(map[&Var::from("G")], Linearity::NonLinear);
        assert_eq!(map[&Var::from("H")], Linearity::NonLinear);

        // The affected-λ-body condition.
        let affected = Expr::var("G").select(
            "x",
            Pred::Member(Expr::var("x").attr(1).singleton(), Expr::var("K")),
        );
        let map = base_linearity(&affected);
        assert_eq!(map[&Var::from("G")], Linearity::Linear);
        assert_eq!(map[&Var::from("K")], Linearity::NonLinear);
        assert!(lambda_affected(&affected).contains(&Var::from("K")));
        assert!(!lambda_affected(&affected).contains(&Var::from("G")));

        // Shadowing: a λ binder named like a base does not read the base.
        let shadow = Expr::var("G").map("H", Expr::var("H").attr(1));
        let map = base_linearity(&shadow);
        assert_eq!(map.get(&Var::from("H")), None);

        // MAP with a base-free body stays linear; δ passes deltas through.
        let nested = Expr::var("G").map("x", Expr::var("x").attr(1).singleton());
        let flat = nested.destroy();
        assert_eq!(base_linearity(&flat)[&Var::from("G")], Linearity::Linear);
    }

    #[test]
    fn cost_classes() {
        let s = schema();
        let poly = Expr::var("G").product(Expr::var("H"));
        assert_eq!(analyze(&poly, &s).unwrap().cost, CostClass::Polynomial(2));
        let pow = Expr::var("G").powerset();
        assert_eq!(analyze(&pow, &s).unwrap().cost, CostClass::Exponential);
        assert!(analyze(&pow, &s).unwrap().cost.blowup_risk());
        let nested = Expr::var("G").powerset().powerset();
        assert_eq!(
            analyze(&nested, &s).unwrap().cost,
            CostClass::HyperExponential
        );
        let pb = Expr::var("G").powerbag();
        assert_eq!(analyze(&pb, &s).unwrap().cost, CostClass::HyperExponential);
        let ifp = Expr::var("G").ifp("T", Expr::var("T"));
        assert_eq!(analyze(&ifp, &s).unwrap().cost, CostClass::Exponential);
    }

    #[test]
    fn cannot_error_requires_concrete_types() {
        let s = schema();
        let ok = Expr::var("G").project(&[1, 2]);
        assert!(analyze(&ok, &s).unwrap().cannot_error);
        // An empty literal's Unknown element type forfeits the
        // certificate: α₃ on its elements only fails at runtime.
        let unknown = Expr::empty_bag().map("x", Expr::var("x").attr(3));
        let facts = analyze(&unknown, &s).unwrap();
        assert!(!facts.cannot_error);
    }

    #[test]
    fn report_renders_every_fact() {
        let s = schema();
        let q = Expr::var("G").product(Expr::var("H")).select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        );
        let facts = analyze(&q, &s).unwrap();
        let report = render_report(&q, &facts);
        assert!(report.contains("type: {{[U, U, U, U]}}"), "{report}");
        assert!(report.contains("G: bilinear"), "{report}");
        assert!(report.contains("cost: polynomial"), "{report}");
        let pow = Expr::var("G").powerset();
        let report = render_report(&pow, &analyze(&pow, &s).unwrap());
        assert!(report.contains("TooLarge risk"), "{report}");
    }

    #[test]
    fn ifp_preserves_set_ness_of_set_seed() {
        let s = schema();
        let tc = Expr::var("G").dedup().ifp("T", Expr::var("T"));
        assert!(analyze(&tc, &s).unwrap().duplicate_free);
        let bag_seed = Expr::var("G").ifp("T", Expr::var("T"));
        assert!(!analyze(&bag_seed, &s).unwrap().duplicate_free);
    }
}
