//! Algebraic rewriting: the optimization rules Section 3 alludes to
//! ("these properties can be used to define rewriting rules, to optimize
//! queries over bags, in the same spirit as optimization of queries over
//! sets, by pushing down selections for instance").
//!
//! All rules are **multiplicity-exact** — bag semantics rules out several
//! classical set rewrites (the paper cites \[CV93\] for how set-based
//! conjunctive-query reasoning fails on bags), so each rule here preserves
//! the full bag, not just the support:
//!
//! * selection fusion and pushdown (through `×` with attribute-range
//!   analysis, and below `MAP`);
//! * `ε` pushdown (`ε∘σ = σ∘ε`, `ε(A×B) = ε(A)×ε(B)`,
//!   `ε(A ∪⁺ B) = ε(A) ∪ ε(B)`, …);
//! * MAP fusion (`MAP_f ∘ MAP_g = MAP_{f∘g}`) and identity elimination;
//! * empty-bag and idempotence simplifications;
//! * constant folding of closed, powerset-free subexpressions.
//!
//! The rewriter assumes the input expression **type checks** against the
//! schema it is given: simplifications such as `∅ × e → ∅` erase shape
//! errors an ill-typed `e` would have raised.

use std::collections::BTreeSet;

use crate::bag::Bag;
use crate::eval::{Evaluator, Limits};
use crate::expr::{Expr, Pred, Var};
use crate::schema::{Database, Schema};
use crate::typecheck::infer_type;
use crate::types::Type;
use crate::value::Value;

/// Rewrite `expr` to a cheaper equivalent, using `schema` for the
/// attribute-range analysis of selection pushdown through products.
///
/// Runs bottom-up passes to a fixpoint (bounded), so the result is stable:
/// `optimize(optimize(e)) == optimize(e)`.
pub fn optimize(expr: &Expr, schema: &Schema) -> Expr {
    let mut current = expr.clone();
    for _ in 0..12 {
        let (next, changed) = pass(&current, schema);
        current = next;
        if !changed {
            break;
        }
    }
    current
}

/// One bottom-up pass.
fn pass(expr: &Expr, schema: &Schema) -> (Expr, bool) {
    // Rewrite children first.
    let (node, mut changed) = rebuild_children(expr, schema);
    // Then the node itself, repeatedly while local rules fire.
    let mut node = node;
    loop {
        match apply_rules(node, schema) {
            (next, true) => {
                node = next;
                changed = true;
            }
            (next, false) => return (next, changed),
        }
    }
}

fn rebuild_children(expr: &Expr, schema: &Schema) -> (Expr, bool) {
    let mut changed = false;
    let mut rw = |e: &Expr| {
        let (out, c) = pass(e, schema);
        changed |= c;
        Box::new(out)
    };
    let out = match expr {
        Expr::Var(_) | Expr::Lit(_) => expr.clone(),
        Expr::AdditiveUnion(a, b) => Expr::AdditiveUnion(rw(a), rw(b)),
        Expr::Subtract(a, b) => Expr::Subtract(rw(a), rw(b)),
        Expr::MaxUnion(a, b) => Expr::MaxUnion(rw(a), rw(b)),
        Expr::Intersect(a, b) => Expr::Intersect(rw(a), rw(b)),
        Expr::Product(a, b) => Expr::Product(rw(a), rw(b)),
        Expr::Tuple(fields) => Expr::Tuple(fields.iter().map(|f| *rw(f)).collect()),
        Expr::Singleton(e) => Expr::Singleton(rw(e)),
        Expr::Powerset(e) => Expr::Powerset(rw(e)),
        Expr::Powerbag(e) => Expr::Powerbag(rw(e)),
        Expr::Attr(e, i) => Expr::Attr(rw(e), *i),
        Expr::Destroy(e) => Expr::Destroy(rw(e)),
        Expr::Dedup(e) => Expr::Dedup(rw(e)),
        Expr::Map { var, body, input } => Expr::Map {
            var: var.clone(),
            body: rw(body),
            input: rw(input),
        },
        Expr::Select { var, pred, input } => {
            let input = rw(input);
            Expr::Select {
                var: var.clone(),
                pred: Box::new(rewrite_pred(pred, schema, &mut changed)),
                input,
            }
        }
        Expr::Ifp { var, body, input } => Expr::Ifp {
            var: var.clone(),
            body: rw(body),
            input: rw(input),
        },
        Expr::Nest { group, input } => Expr::Nest {
            group: group.clone(),
            input: rw(input),
        },
    };
    (out, changed)
}

fn rewrite_pred(pred: &Pred, schema: &Schema, changed: &mut bool) -> Pred {
    let mut rw = |e: &Expr| {
        let (out, c) = pass(e, schema);
        *changed |= c;
        out
    };
    match pred {
        Pred::True => Pred::True,
        Pred::Eq(a, b) => Pred::Eq(rw(a), rw(b)),
        Pred::Lt(a, b) => Pred::Lt(rw(a), rw(b)),
        Pred::Le(a, b) => Pred::Le(rw(a), rw(b)),
        Pred::Member(a, b) => Pred::Member(rw(a), rw(b)),
        Pred::SubBag(a, b) => Pred::SubBag(rw(a), rw(b)),
        Pred::Not(p) => Pred::Not(Box::new(rewrite_pred(p, schema, changed))),
        Pred::And(a, b) => Pred::And(
            Box::new(rewrite_pred(a, schema, changed)),
            Box::new(rewrite_pred(b, schema, changed)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(rewrite_pred(a, schema, changed)),
            Box::new(rewrite_pred(b, schema, changed)),
        ),
    }
}

fn is_empty_lit(expr: &Expr) -> bool {
    matches!(expr, Expr::Lit(Value::Bag(bag)) if bag.is_empty())
}

fn empty() -> Expr {
    Expr::Lit(Value::Bag(Bag::new()))
}

/// All binder names occurring anywhere in the expression.
fn binders(expr: &Expr) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    expr.visit(&mut |e| match e {
        Expr::Map { var, .. } | Expr::Select { var, .. } | Expr::Ifp { var, .. } => {
            out.insert(var.clone());
        }
        _ => {}
    });
    out
}

fn pred_binders(pred: &Pred) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    pred.visit_exprs(&mut |e| out.extend(binders(e)));
    out
}

/// Capture-safe substitution of free `var` by `replacement`; `None` when
/// a binder in the target could capture a free variable of the
/// replacement (conservative).
fn subst(expr: &Expr, var: &Var, replacement: &Expr) -> Option<Expr> {
    let replacement_free: BTreeSet<Var> = replacement.free_vars().into_iter().collect();
    if binders(expr)
        .intersection(&replacement_free)
        .next()
        .is_some()
    {
        return None;
    }
    Some(subst_unchecked(expr, var, replacement))
}

fn subst_unchecked(expr: &Expr, var: &Var, replacement: &Expr) -> Expr {
    match expr {
        Expr::Var(name) if name == var => replacement.clone(),
        Expr::Var(_) | Expr::Lit(_) => expr.clone(),
        Expr::AdditiveUnion(a, b) => Expr::AdditiveUnion(
            Box::new(subst_unchecked(a, var, replacement)),
            Box::new(subst_unchecked(b, var, replacement)),
        ),
        Expr::Subtract(a, b) => Expr::Subtract(
            Box::new(subst_unchecked(a, var, replacement)),
            Box::new(subst_unchecked(b, var, replacement)),
        ),
        Expr::MaxUnion(a, b) => Expr::MaxUnion(
            Box::new(subst_unchecked(a, var, replacement)),
            Box::new(subst_unchecked(b, var, replacement)),
        ),
        Expr::Intersect(a, b) => Expr::Intersect(
            Box::new(subst_unchecked(a, var, replacement)),
            Box::new(subst_unchecked(b, var, replacement)),
        ),
        Expr::Product(a, b) => Expr::Product(
            Box::new(subst_unchecked(a, var, replacement)),
            Box::new(subst_unchecked(b, var, replacement)),
        ),
        Expr::Tuple(fields) => Expr::Tuple(
            fields
                .iter()
                .map(|f| subst_unchecked(f, var, replacement))
                .collect(),
        ),
        Expr::Singleton(e) => Expr::Singleton(Box::new(subst_unchecked(e, var, replacement))),
        Expr::Powerset(e) => Expr::Powerset(Box::new(subst_unchecked(e, var, replacement))),
        Expr::Powerbag(e) => Expr::Powerbag(Box::new(subst_unchecked(e, var, replacement))),
        Expr::Attr(e, i) => Expr::Attr(Box::new(subst_unchecked(e, var, replacement)), *i),
        Expr::Destroy(e) => Expr::Destroy(Box::new(subst_unchecked(e, var, replacement))),
        Expr::Dedup(e) => Expr::Dedup(Box::new(subst_unchecked(e, var, replacement))),
        Expr::Map {
            var: bound,
            body,
            input,
        } => {
            let input = Box::new(subst_unchecked(input, var, replacement));
            let body = if bound == var {
                body.clone() // shadowed
            } else {
                Box::new(subst_unchecked(body, var, replacement))
            };
            Expr::Map {
                var: bound.clone(),
                body,
                input,
            }
        }
        Expr::Select {
            var: bound,
            pred,
            input,
        } => {
            let input = Box::new(subst_unchecked(input, var, replacement));
            let pred = if bound == var {
                pred.clone()
            } else {
                Box::new(subst_pred_unchecked(pred, var, replacement))
            };
            Expr::Select {
                var: bound.clone(),
                pred,
                input,
            }
        }
        Expr::Ifp {
            var: bound,
            body,
            input,
        } => {
            let input = Box::new(subst_unchecked(input, var, replacement));
            let body = if bound == var {
                body.clone()
            } else {
                Box::new(subst_unchecked(body, var, replacement))
            };
            Expr::Ifp {
                var: bound.clone(),
                body,
                input,
            }
        }
        Expr::Nest { group, input } => Expr::Nest {
            group: group.clone(),
            input: Box::new(subst_unchecked(input, var, replacement)),
        },
    }
}

fn subst_pred(pred: &Pred, var: &Var, replacement: &Expr) -> Option<Pred> {
    let replacement_free: BTreeSet<Var> = replacement.free_vars().into_iter().collect();
    if pred_binders(pred)
        .intersection(&replacement_free)
        .next()
        .is_some()
    {
        return None;
    }
    Some(subst_pred_unchecked(pred, var, replacement))
}

fn subst_pred_unchecked(pred: &Pred, var: &Var, replacement: &Expr) -> Pred {
    match pred {
        Pred::True => Pred::True,
        Pred::Eq(a, b) => Pred::Eq(
            subst_unchecked(a, var, replacement),
            subst_unchecked(b, var, replacement),
        ),
        Pred::Lt(a, b) => Pred::Lt(
            subst_unchecked(a, var, replacement),
            subst_unchecked(b, var, replacement),
        ),
        Pred::Le(a, b) => Pred::Le(
            subst_unchecked(a, var, replacement),
            subst_unchecked(b, var, replacement),
        ),
        Pred::Member(a, b) => Pred::Member(
            subst_unchecked(a, var, replacement),
            subst_unchecked(b, var, replacement),
        ),
        Pred::SubBag(a, b) => Pred::SubBag(
            subst_unchecked(a, var, replacement),
            subst_unchecked(b, var, replacement),
        ),
        Pred::Not(p) => Pred::Not(Box::new(subst_pred_unchecked(p, var, replacement))),
        Pred::And(a, b) => Pred::And(
            Box::new(subst_pred_unchecked(a, var, replacement)),
            Box::new(subst_pred_unchecked(b, var, replacement)),
        ),
        Pred::Or(a, b) => Pred::Or(
            Box::new(subst_pred_unchecked(a, var, replacement)),
            Box::new(subst_pred_unchecked(b, var, replacement)),
        ),
    }
}

/// `true` when the static analyzer certifies `expr` duplicate-free —
/// cheap syntactic lattice first, typed pass (which certifies strictly
/// more) when the expression is closed under `schema`.
fn certified_set(expr: &Expr, schema: &Schema) -> bool {
    crate::analyze::certified_duplicate_free(expr)
        || matches!(
            crate::analyze::analyze(expr, schema),
            Ok(facts) if facts.duplicate_free
        )
}

/// Local rules at one node. Returns `(expr, changed)`.
fn apply_rules(expr: Expr, schema: &Schema) -> (Expr, bool) {
    match expr {
        // --- selection rules -------------------------------------------
        Expr::Select { pred, input, .. } if matches!(*pred, Pred::True) => (*input, true),
        Expr::Select { input, .. } if is_empty_lit(&input) => (empty(), true),
        // Fuse σ_p(σ_q(e)): rename q's variable to p's.
        Expr::Select {
            var: outer_var,
            pred: outer_pred,
            input,
        } if matches!(*input, Expr::Select { .. }) => {
            let Expr::Select {
                var: inner_var,
                pred: inner_pred,
                input: inner_input,
            } = *input
            else {
                unreachable!("guarded by matches!")
            };
            let renamed = if inner_var == outer_var {
                Some(*inner_pred.clone())
            } else {
                subst_pred(&inner_pred, &inner_var, &Expr::Var(outer_var.clone()))
            };
            match renamed {
                Some(inner) => (
                    Expr::Select {
                        var: outer_var,
                        pred: Box::new(Pred::And(outer_pred, Box::new(inner))),
                        input: inner_input,
                    },
                    true,
                ),
                None => (
                    Expr::Select {
                        var: outer_var,
                        pred: outer_pred,
                        input: Box::new(Expr::Select {
                            var: inner_var,
                            pred: inner_pred,
                            input: inner_input,
                        }),
                    },
                    false,
                ),
            }
        }
        // Push σ below MAP: σ_p(MAP_f(e)) = MAP_f(σ_{p[x := f]}(e)).
        Expr::Select {
            var: select_var,
            pred,
            input,
        } if matches!(*input, Expr::Map { .. }) => {
            let Expr::Map {
                var: map_var,
                body,
                input: map_input,
            } = *input
            else {
                unreachable!("guarded by matches!")
            };
            match subst_pred(&pred, &select_var, &body) {
                Some(pushed) => (
                    Expr::Map {
                        var: map_var.clone(),
                        body,
                        input: Box::new(Expr::Select {
                            var: map_var,
                            pred: Box::new(pushed),
                            input: map_input,
                        }),
                    },
                    true,
                ),
                None => (
                    Expr::Select {
                        var: select_var,
                        pred,
                        input: Box::new(Expr::Map {
                            var: map_var,
                            body,
                            input: map_input,
                        }),
                    },
                    false,
                ),
            }
        }
        // Push σ through × when the predicate touches one side only.
        Expr::Select { var, pred, input } if matches!(*input, Expr::Product(_, _)) => {
            let Expr::Product(left, right) = *input else {
                unreachable!("guarded by matches!")
            };
            push_select_through_product(var, *pred, *left, *right, schema)
        }

        // --- dedup rules -------------------------------------------------
        // ε-elimination under a set-ness certificate — the analyzer's
        // first fact-guarded rewrite: when the static analysis certifies
        // the operand duplicate-free, ε is the identity. The typed pass
        // certifies strictly more than the syntactic lattice (products of
        // sets with statically known arities); inside λ bodies, where the
        // operand has free λ variables the schema cannot type, the
        // syntactic lattice still applies.
        Expr::Dedup(e) if certified_set(&e, schema) => (*e, true),
        Expr::Dedup(e) if matches!(*e, Expr::Dedup(_)) => (*e, true),
        Expr::Dedup(e) if is_empty_lit(&e) => (empty(), true),
        Expr::Dedup(e) if matches!(*e, Expr::Select { .. }) => {
            let Expr::Select { var, pred, input } = *e else {
                unreachable!("guarded by matches!")
            };
            (
                Expr::Select {
                    var,
                    pred,
                    input: Box::new(Expr::Dedup(input)),
                },
                true,
            )
        }
        Expr::Dedup(e) if matches!(*e, Expr::Product(_, _)) => {
            let Expr::Product(a, b) = *e else {
                unreachable!("guarded by matches!")
            };
            (
                Expr::Product(Box::new(Expr::Dedup(a)), Box::new(Expr::Dedup(b))),
                true,
            )
        }
        Expr::Dedup(e) if matches!(*e, Expr::MaxUnion(_, _) | Expr::AdditiveUnion(_, _)) => {
            let (a, b) = match *e {
                Expr::MaxUnion(a, b) | Expr::AdditiveUnion(a, b) => (a, b),
                _ => unreachable!("guarded by matches!"),
            };
            // ε(A ∪ B) = ε(A ∪⁺ B) = ε(A) ∪ ε(B): support union.
            (
                Expr::MaxUnion(Box::new(Expr::Dedup(a)), Box::new(Expr::Dedup(b))),
                true,
            )
        }

        // --- MAP rules ---------------------------------------------------
        Expr::Map { input, .. } if is_empty_lit(&input) => (empty(), true),
        // Identity map.
        Expr::Map { var, body, input } if *body == Expr::Var(var.clone()) => {
            let _ = var;
            (*input, true)
        }
        // Fusion MAP_f(MAP_g(e)) → MAP_{f[x:=g]}(e).
        Expr::Map {
            var: outer_var,
            body: outer_body,
            input,
        } if matches!(*input, Expr::Map { .. }) => {
            let Expr::Map {
                var: inner_var,
                body: inner_body,
                input: inner_input,
            } = *input
            else {
                unreachable!("guarded by matches!")
            };
            match subst(&outer_body, &outer_var, &inner_body) {
                Some(fused) => (
                    Expr::Map {
                        var: inner_var,
                        body: Box::new(fused),
                        input: inner_input,
                    },
                    true,
                ),
                None => (
                    Expr::Map {
                        var: outer_var,
                        body: outer_body,
                        input: Box::new(Expr::Map {
                            var: inner_var,
                            body: inner_body,
                            input: inner_input,
                        }),
                    },
                    false,
                ),
            }
        }

        // --- empty-bag propagation & idempotence ------------------------
        Expr::AdditiveUnion(a, b) if is_empty_lit(&a) => (*b, true),
        Expr::AdditiveUnion(a, b) if is_empty_lit(&b) => (*a, true),
        Expr::MaxUnion(a, b) if is_empty_lit(&a) => (*b, true),
        Expr::MaxUnion(a, b) if is_empty_lit(&b) => (*a, true),
        Expr::MaxUnion(a, b) if a == b => (*a, true),
        Expr::Intersect(a, b) if is_empty_lit(&a) || is_empty_lit(&b) => (empty(), true),
        Expr::Intersect(a, b) if a == b => (*a, true),
        Expr::Subtract(a, b) if is_empty_lit(&b) => (*a, true),
        Expr::Subtract(a, b) if is_empty_lit(&a) || a == b => (empty(), true),
        Expr::Product(a, b) if is_empty_lit(&a) || is_empty_lit(&b) => (empty(), true),
        Expr::Destroy(e) if is_empty_lit(&e) => (empty(), true),

        // --- constant folding -------------------------------------------
        other => try_fold(other),
    }
}

/// Attribute usage of `var` in a predicate: `Some(indices)` when every
/// occurrence is under `αᵢ(var)`, `None` when the variable is used bare
/// or rebound (no pushdown possible).
fn attr_usage(pred: &Pred, var: &Var) -> Option<BTreeSet<usize>> {
    if pred_binders(pred).contains(var) {
        return None;
    }
    let mut indices = BTreeSet::new();
    let mut ok = true;
    pred.visit_exprs(&mut |e| collect_usage(e, var, &mut indices, &mut ok));
    if ok {
        Some(indices)
    } else {
        None
    }
}

fn collect_usage(expr: &Expr, var: &Var, indices: &mut BTreeSet<usize>, ok: &mut bool) {
    match expr {
        Expr::Attr(inner, i) if **inner == Expr::Var(var.clone()) => {
            indices.insert(*i);
        }
        Expr::Var(name) if name == var => {
            *ok = false; // bare use of the row variable
        }
        _ => {
            // Recurse manually over children (visit would re-enter Attr).
            match expr {
                Expr::Var(_) | Expr::Lit(_) => {}
                Expr::AdditiveUnion(a, b)
                | Expr::Subtract(a, b)
                | Expr::MaxUnion(a, b)
                | Expr::Intersect(a, b)
                | Expr::Product(a, b) => {
                    collect_usage(a, var, indices, ok);
                    collect_usage(b, var, indices, ok);
                }
                Expr::Tuple(fields) => {
                    for field in fields {
                        collect_usage(field, var, indices, ok);
                    }
                }
                Expr::Singleton(e)
                | Expr::Powerset(e)
                | Expr::Powerbag(e)
                | Expr::Destroy(e)
                | Expr::Dedup(e) => collect_usage(e, var, indices, ok),
                Expr::Attr(e, _) => collect_usage(e, var, indices, ok),
                Expr::Map {
                    var: bound,
                    body,
                    input,
                }
                | Expr::Ifp {
                    var: bound,
                    body,
                    input,
                } => {
                    collect_usage(input, var, indices, ok);
                    if bound != var {
                        collect_usage(body, var, indices, ok);
                    }
                }
                Expr::Select {
                    var: bound,
                    pred,
                    input,
                } => {
                    collect_usage(input, var, indices, ok);
                    if bound != var {
                        pred.visit_exprs(&mut |e| collect_usage(e, var, indices, ok));
                    }
                }
                Expr::Nest { input, .. } => collect_usage(input, var, indices, ok),
            }
        }
    }
}

/// Arity of a bag-of-tuples expression under the schema, if derivable.
fn arity_of(expr: &Expr, schema: &Schema) -> Option<usize> {
    match infer_type(expr, schema).ok()? {
        Type::Bag(inner) => match *inner {
            Type::Tuple(fields) => Some(fields.len()),
            _ => None,
        },
        _ => None,
    }
}

/// Shift every `αᵢ(var)` in the predicate down by `offset`.
fn shift_attrs(pred: &Pred, var: &Var, offset: usize) -> Pred {
    fn shift_expr(expr: &Expr, var: &Var, offset: usize) -> Expr {
        match expr {
            Expr::Attr(inner, i) if **inner == Expr::Var(var.clone()) => {
                Expr::Attr(inner.clone(), i - offset)
            }
            Expr::Var(_) | Expr::Lit(_) => expr.clone(),
            Expr::AdditiveUnion(a, b) => Expr::AdditiveUnion(
                Box::new(shift_expr(a, var, offset)),
                Box::new(shift_expr(b, var, offset)),
            ),
            Expr::Subtract(a, b) => Expr::Subtract(
                Box::new(shift_expr(a, var, offset)),
                Box::new(shift_expr(b, var, offset)),
            ),
            Expr::MaxUnion(a, b) => Expr::MaxUnion(
                Box::new(shift_expr(a, var, offset)),
                Box::new(shift_expr(b, var, offset)),
            ),
            Expr::Intersect(a, b) => Expr::Intersect(
                Box::new(shift_expr(a, var, offset)),
                Box::new(shift_expr(b, var, offset)),
            ),
            Expr::Product(a, b) => Expr::Product(
                Box::new(shift_expr(a, var, offset)),
                Box::new(shift_expr(b, var, offset)),
            ),
            Expr::Tuple(fields) => {
                Expr::Tuple(fields.iter().map(|f| shift_expr(f, var, offset)).collect())
            }
            Expr::Singleton(e) => Expr::Singleton(Box::new(shift_expr(e, var, offset))),
            Expr::Powerset(e) => Expr::Powerset(Box::new(shift_expr(e, var, offset))),
            Expr::Powerbag(e) => Expr::Powerbag(Box::new(shift_expr(e, var, offset))),
            Expr::Attr(e, i) => Expr::Attr(Box::new(shift_expr(e, var, offset)), *i),
            Expr::Destroy(e) => Expr::Destroy(Box::new(shift_expr(e, var, offset))),
            Expr::Dedup(e) => Expr::Dedup(Box::new(shift_expr(e, var, offset))),
            // Binders shadowing `var` were excluded by attr_usage.
            Expr::Map {
                var: v,
                body,
                input,
            } => Expr::Map {
                var: v.clone(),
                body: Box::new(shift_expr(body, var, offset)),
                input: Box::new(shift_expr(input, var, offset)),
            },
            Expr::Select {
                var: v,
                pred,
                input,
            } => Expr::Select {
                var: v.clone(),
                pred: Box::new(shift_pred(pred, var, offset)),
                input: Box::new(shift_expr(input, var, offset)),
            },
            Expr::Ifp {
                var: v,
                body,
                input,
            } => Expr::Ifp {
                var: v.clone(),
                body: Box::new(shift_expr(body, var, offset)),
                input: Box::new(shift_expr(input, var, offset)),
            },
            Expr::Nest { group, input } => Expr::Nest {
                group: group.clone(),
                input: Box::new(shift_expr(input, var, offset)),
            },
        }
    }
    fn shift_pred(pred: &Pred, var: &Var, offset: usize) -> Pred {
        match pred {
            Pred::True => Pred::True,
            Pred::Eq(a, b) => Pred::Eq(shift_expr(a, var, offset), shift_expr(b, var, offset)),
            Pred::Lt(a, b) => Pred::Lt(shift_expr(a, var, offset), shift_expr(b, var, offset)),
            Pred::Le(a, b) => Pred::Le(shift_expr(a, var, offset), shift_expr(b, var, offset)),
            Pred::Member(a, b) => {
                Pred::Member(shift_expr(a, var, offset), shift_expr(b, var, offset))
            }
            Pred::SubBag(a, b) => {
                Pred::SubBag(shift_expr(a, var, offset), shift_expr(b, var, offset))
            }
            Pred::Not(p) => Pred::Not(Box::new(shift_pred(p, var, offset))),
            Pred::And(a, b) => Pred::And(
                Box::new(shift_pred(a, var, offset)),
                Box::new(shift_pred(b, var, offset)),
            ),
            Pred::Or(a, b) => Pred::Or(
                Box::new(shift_pred(a, var, offset)),
                Box::new(shift_pred(b, var, offset)),
            ),
        }
    }
    shift_pred(pred, var, offset)
}

fn push_select_through_product(
    var: Var,
    pred: Pred,
    left: Expr,
    right: Expr,
    schema: &Schema,
) -> (Expr, bool) {
    let unsplit = |var: Var, pred: Pred, left: Expr, right: Expr| Expr::Select {
        var,
        pred: Box::new(pred),
        input: Box::new(Expr::Product(Box::new(left), Box::new(right))),
    };
    let Some(usage) = attr_usage(&pred, &var) else {
        return (unsplit(var, pred, left, right), false);
    };
    let Some(left_arity) = arity_of(&left, schema) else {
        return (unsplit(var, pred, left, right), false);
    };
    if usage.is_empty() {
        return (unsplit(var, pred, left, right), false);
    }
    if usage.iter().all(|&i| i <= left_arity) {
        // All attributes are from the left operand: σ commutes inside.
        let pushed = Expr::Select {
            var,
            pred: Box::new(pred),
            input: Box::new(left),
        };
        (Expr::Product(Box::new(pushed), Box::new(right)), true)
    } else if usage.iter().all(|&i| i > left_arity) {
        let shifted = shift_attrs(&pred, &var, left_arity);
        let pushed = Expr::Select {
            var,
            pred: Box::new(shifted),
            input: Box::new(right),
        };
        (Expr::Product(Box::new(left), Box::new(pushed)), true)
    } else {
        (unsplit(var, pred, left, right), false)
    }
}

/// Fold a closed, powerset/fixpoint-free subexpression to a literal.
fn try_fold(expr: Expr) -> (Expr, bool) {
    if matches!(expr, Expr::Lit(_) | Expr::Var(_)) {
        return (expr, false);
    }
    if expr.size() > 48 || !expr.free_vars().is_empty() {
        return (expr, false);
    }
    let mut explosive = false;
    expr.visit(&mut |e| {
        if matches!(e, Expr::Powerset(_) | Expr::Powerbag(_) | Expr::Ifp { .. }) {
            explosive = true;
        }
    });
    if explosive {
        return (expr, false);
    }
    let empty_db = Database::new();
    let mut evaluator = Evaluator::new(&empty_db, Limits::small());
    match evaluator.eval(&expr) {
        Ok(value) => (Expr::Lit(value), true),
        Err(_) => (expr, false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_bag;
    use crate::expr::{Expr, Pred};
    use crate::natural::Natural;
    use crate::types::Type;

    fn graph_schema() -> Schema {
        Schema::new()
            .with("G", Type::relation(2))
            .with("H", Type::relation(2))
    }

    fn graph_db() -> Database {
        let mut g = Bag::new();
        for (a, b, m) in [("a", "b", 2u64), ("b", "c", 1), ("c", "a", 3)] {
            g.insert_with_multiplicity(
                Value::tuple([Value::sym(a), Value::sym(b)]),
                Natural::from(m),
            );
        }
        let mut h = Bag::new();
        h.insert(Value::tuple([Value::sym("b"), Value::sym("z")]));
        Database::new().with("G", g).with("H", h)
    }

    /// Optimization must preserve the *bag*, not just the support.
    fn assert_equivalent(q: &Expr) {
        let schema = graph_schema();
        let db = graph_db();
        let optimized = optimize(q, &schema);
        let before = eval_bag(q, &db).unwrap();
        let after = eval_bag(&optimized, &db).unwrap();
        assert_eq!(before, after, "optimize changed semantics of {q}");
        // And be stable.
        assert_eq!(optimize(&optimized, &schema), optimized);
    }

    #[test]
    fn dedup_elided_under_set_certificate() {
        // ε(ε(G) − H): the analyzer certifies the monus of a set
        // duplicate-free, so the outer ε vanishes.
        let q = Expr::var("G").dedup().subtract(Expr::var("H")).dedup();
        let out = optimize(&q, &graph_schema());
        assert_eq!(out, Expr::var("G").dedup().subtract(Expr::var("H")));
        assert_equivalent(&q);

        // The typed certificate: a product of sets with known arities is
        // a set, so ε(ε(G) × ε(H)) loses its outer ε (the syntactic
        // lattice alone could not prove this).
        let p = Expr::var("G")
            .dedup()
            .product(Expr::var("H").dedup())
            .dedup();
        let out = optimize(&p, &graph_schema());
        let mut dedups = 0;
        out.visit(&mut |e| {
            if matches!(e, Expr::Dedup(_)) {
                dedups += 1;
            }
        });
        assert_eq!(dedups, 2, "outer ε should be elided: {out}");
        assert_equivalent(&p);

        // No certificate, no elision: a raw base keeps its ε.
        let raw = Expr::var("G").dedup();
        assert_eq!(optimize(&raw, &graph_schema()), raw);
    }

    #[test]
    fn select_true_elided() {
        let q = Expr::var("G").select("x", Pred::True);
        let out = optimize(&q, &graph_schema());
        assert_eq!(out, Expr::var("G"));
    }

    #[test]
    fn select_fusion() {
        let q = Expr::var("G")
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(1), Expr::lit(Value::sym("a"))),
            )
            .select(
                "y",
                Pred::eq(Expr::var("y").attr(2), Expr::lit(Value::sym("b"))),
            );
        let out = optimize(&q, &graph_schema());
        // One Select remains.
        let mut selects = 0;
        out.visit(&mut |e| {
            if matches!(e, Expr::Select { .. }) {
                selects += 1;
            }
        });
        assert_eq!(selects, 1, "{out}");
        assert_equivalent(&q);
    }

    #[test]
    fn select_pushes_into_left_of_product() {
        let q = Expr::var("G").product(Expr::var("H")).select(
            "x",
            Pred::eq(Expr::var("x").attr(1), Expr::lit(Value::sym("a"))),
        );
        let out = optimize(&q, &graph_schema());
        // The product must now be the outermost operator.
        assert!(matches!(out, Expr::Product(_, _)), "{out}");
        assert_equivalent(&q);
    }

    #[test]
    fn select_pushes_into_right_of_product_with_shift() {
        let q = Expr::var("G").product(Expr::var("H")).select(
            "x",
            Pred::eq(Expr::var("x").attr(3), Expr::lit(Value::sym("b"))),
        );
        let out = optimize(&q, &graph_schema());
        assert!(matches!(out, Expr::Product(_, _)), "{out}");
        // The pushed predicate must reference α1 now.
        let mut saw_attr1 = false;
        out.visit(&mut |e| {
            if let Expr::Select { pred, .. } = e {
                pred.visit(&mut |inner| {
                    if matches!(inner, Expr::Attr(_, 1)) {
                        saw_attr1 = true;
                    }
                });
            }
        });
        assert!(saw_attr1, "{out}");
        assert_equivalent(&q);
    }

    #[test]
    fn mixed_predicate_not_pushed() {
        // Join predicate touches both sides: stays put.
        let q = Expr::var("G").product(Expr::var("H")).select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        );
        let out = optimize(&q, &graph_schema());
        assert!(matches!(out, Expr::Select { .. }), "{out}");
        assert_equivalent(&q);
    }

    #[test]
    fn map_fusion_and_identity() {
        let q = Expr::var("G").project(&[2, 1]).project(&[2, 1]);
        let out = optimize(&q, &graph_schema());
        let mut maps = 0;
        out.visit(&mut |e| {
            if matches!(e, Expr::Map { .. }) {
                maps += 1;
            }
        });
        assert_eq!(maps, 1, "{out}");
        assert_equivalent(&q);

        let identity = Expr::var("G").map("x", Expr::var("x"));
        assert_eq!(optimize(&identity, &graph_schema()), Expr::var("G"));
    }

    #[test]
    fn dedup_rules() {
        let q = Expr::var("G").dedup().dedup();
        let out = optimize(&q, &graph_schema());
        let mut dedups = 0;
        out.visit(&mut |e| {
            if matches!(e, Expr::Dedup(_)) {
                dedups += 1;
            }
        });
        assert_eq!(dedups, 1);
        assert_equivalent(&q);

        let q2 = Expr::var("G").product(Expr::var("H")).dedup();
        assert_equivalent(&q2);
        let out2 = optimize(&q2, &graph_schema());
        assert!(matches!(out2, Expr::Product(_, _)), "{out2}");

        let q3 = Expr::var("G").additive_union(Expr::var("H")).dedup();
        assert_equivalent(&q3);
        let out3 = optimize(&q3, &graph_schema());
        assert!(matches!(out3, Expr::MaxUnion(_, _)), "{out3}");
    }

    #[test]
    fn empty_and_idempotence() {
        let schema = graph_schema();
        let empty = Expr::empty_bag();
        assert_eq!(
            optimize(&Expr::var("G").additive_union(empty.clone()), &schema),
            Expr::var("G")
        );
        assert_eq!(
            optimize(&Expr::var("G").product(empty.clone()), &schema),
            empty
        );
        assert_eq!(
            optimize(&Expr::var("G").intersect(Expr::var("G")), &schema),
            Expr::var("G")
        );
        assert_eq!(
            optimize(&Expr::var("G").subtract(Expr::var("G")), &schema),
            empty
        );
    }

    #[test]
    fn constant_folding() {
        let q = Expr::bag_lit([Value::tuple([Value::sym("a")])])
            .additive_union(Expr::bag_lit([Value::tuple([Value::sym("a")])]));
        let out = optimize(&q, &Schema::new());
        match out {
            Expr::Lit(Value::Bag(bag)) => {
                assert_eq!(
                    bag.multiplicity(&Value::tuple([Value::sym("a")])),
                    Natural::from(2u64)
                );
            }
            other => panic!("expected folded literal, got {other}"),
        }
    }

    #[test]
    fn select_pushes_below_map() {
        // σ_{α₁=a}(π₂,₁(G)) → π₂,₁(σ_{α₂=a}(G)).
        let q = Expr::var("G").project(&[2, 1]).select(
            "y",
            Pred::eq(Expr::var("y").attr(1), Expr::lit(Value::sym("a"))),
        );
        let out = optimize(&q, &graph_schema());
        // Outermost should now be the MAP.
        assert!(matches!(out, Expr::Map { .. }), "{out}");
        assert_equivalent(&q);
    }

    #[test]
    fn optimizer_reduces_work_on_join() {
        use crate::eval::eval_with_metrics;
        let schema = graph_schema();
        let db = graph_db();
        let q = Expr::var("G").product(Expr::var("H")).select(
            "x",
            Pred::eq(Expr::var("x").attr(1), Expr::lit(Value::sym("a"))),
        );
        let optimized = optimize(&q, &schema);
        let (r1, m1) = eval_with_metrics(&q, &db, Limits::default());
        let (r2, m2) = eval_with_metrics(&optimized, &db, Limits::default());
        assert_eq!(r1.unwrap(), r2.unwrap());
        assert!(
            m2.steps <= m1.steps,
            "optimized used more steps ({} > {})",
            m2.steps,
            m1.steps
        );
    }

    #[test]
    fn shadowed_variables_are_respected() {
        // Inner select binds the same name as an outer map variable.
        let q = Expr::var("G")
            .map(
                "x",
                Expr::tuple([Expr::var("x").attr(2), Expr::var("x").attr(1)]),
            )
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(1), Expr::lit(Value::sym("c"))),
            );
        assert_equivalent(&q);
    }
}
