//! The expanded (standard-encoding) bag representation — a differential
//! oracle.
//!
//! Section 2 defines bag size via the standard encoding, where "each
//! object is repeated in the encoding as many times as it appears in the
//! bag"; Section 3 then observes that real systems often store the
//! duplicates explicitly. This module implements bags exactly that way —
//! a sorted vector of occurrences — with independent, deliberately naive
//! implementations of the duplicate-sensitive operators.
//!
//! Its purpose is twofold:
//! * **differential testing**: every counted [`Bag`] operation is checked
//!   against this oracle on random inputs (see `tests/differential.rs`);
//! * **ablation**: the `micro_counted_vs_expanded` bench quantifies what
//!   the counted representation buys.
//!
//! Multiplicities beyond `u32::MAX` cannot be materialized; constructors
//! return `None` for such bags (the counted form is the only lossless
//! one — which is itself a finding the paper's encoding discussion
//! anticipates).

use crate::bag::Bag;
use crate::natural::Natural;
use crate::value::Value;

/// A bag stored as its standard encoding: one slot per occurrence, kept
/// sorted so equality is canonical.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ExpandedBag {
    items: Vec<Value>,
}

impl ExpandedBag {
    /// The empty bag.
    pub fn new() -> ExpandedBag {
        ExpandedBag::default()
    }

    /// Expand a counted bag; `None` if any multiplicity exceeds `u32::MAX`
    /// (the representation gap the counted form closes).
    pub fn from_bag(bag: &Bag) -> Option<ExpandedBag> {
        let mut items = Vec::new();
        for (value, mult) in bag.iter() {
            let count = mult.to_u64().filter(|&c| c <= u32::MAX as u64)?;
            items.extend(std::iter::repeat_n(value.clone(), count as usize));
        }
        // Bag iteration is ordered, repeats are adjacent: already sorted.
        debug_assert!(items.windows(2).all(|w| w[0] <= w[1]));
        Some(ExpandedBag { items })
    }

    /// Collapse back to the counted representation.
    pub fn to_bag(&self) -> Bag {
        Bag::from_values(self.items.iter().cloned())
    }

    /// Number of occurrences (the paper's bag size).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Occurrences of one value, by scanning.
    pub fn count_of(&self, value: &Value) -> usize {
        self.items.iter().filter(|item| *item == value).count()
    }

    /// `∪⁺` — concatenate and re-sort.
    pub fn additive_union(&self, other: &ExpandedBag) -> ExpandedBag {
        let mut items = Vec::with_capacity(self.items.len() + other.items.len());
        items.extend(self.items.iter().cloned());
        items.extend(other.items.iter().cloned());
        items.sort();
        ExpandedBag { items }
    }

    /// `−` — remove one occurrence from `self` per occurrence in `other`.
    pub fn subtract(&self, other: &ExpandedBag) -> ExpandedBag {
        let mut items = self.items.clone();
        for needle in &other.items {
            if let Ok(pos) = items.binary_search(needle) {
                items.remove(pos);
            }
        }
        ExpandedBag { items }
    }

    /// `∪` — per distinct value, the larger occurrence count.
    pub fn max_union(&self, other: &ExpandedBag) -> ExpandedBag {
        let mut out = self.clone();
        for needle in distinct(&other.items) {
            let mine = self.count_of(needle);
            let theirs = other.count_of(needle);
            for _ in mine..theirs {
                let pos = out.items.binary_search(needle).unwrap_or_else(|p| p);
                out.items.insert(pos, needle.clone());
            }
        }
        out
    }

    /// `∩` — per distinct value, the smaller occurrence count.
    pub fn intersect(&self, other: &ExpandedBag) -> ExpandedBag {
        let mut items = Vec::new();
        for needle in distinct(&self.items) {
            let keep = self.count_of(needle).min(other.count_of(needle));
            items.extend(std::iter::repeat_n(needle.clone(), keep));
        }
        items.sort();
        ExpandedBag { items }
    }

    /// `ε` — one occurrence of each distinct value.
    pub fn dedup(&self) -> ExpandedBag {
        ExpandedBag {
            items: distinct(&self.items).cloned().collect(),
        }
    }

    /// `×` — pairwise tuple concatenation (quadratic in occurrences).
    pub fn product(&self, other: &ExpandedBag) -> Option<ExpandedBag> {
        let mut items = Vec::with_capacity(self.items.len() * other.items.len());
        for left in &self.items {
            let left_fields = left.as_tuple()?;
            for right in &other.items {
                let right_fields = right.as_tuple()?;
                let mut fields = Vec::with_capacity(left_fields.len() + right_fields.len());
                fields.extend_from_slice(left_fields);
                fields.extend_from_slice(right_fields);
                items.push(Value::Tuple(fields.into()));
            }
        }
        items.sort();
        Some(ExpandedBag { items })
    }

    /// `MAP` — apply to every occurrence.
    pub fn map(&self, f: impl Fn(&Value) -> Value) -> ExpandedBag {
        let mut items: Vec<Value> = self.items.iter().map(f).collect();
        items.sort();
        ExpandedBag { items }
    }

    /// `σ` — keep occurrences satisfying the predicate.
    pub fn select(&self, pred: impl Fn(&Value) -> bool) -> ExpandedBag {
        ExpandedBag {
            items: self.items.iter().filter(|v| pred(v)).cloned().collect(),
        }
    }

    /// `δ` — concatenate the inner bags of every occurrence.
    pub fn destroy(&self) -> Option<ExpandedBag> {
        let mut items = Vec::new();
        for value in &self.items {
            let inner = value.as_bag()?;
            let expanded = ExpandedBag::from_bag(inner)?;
            items.extend(expanded.items);
        }
        items.sort();
        Some(ExpandedBag { items })
    }

    /// The size of the standard encoding (occurrences, not distinct
    /// values) as a [`Natural`] — definitionally `len()` here.
    pub fn encoded_cardinality(&self) -> Natural {
        Natural::from(self.items.len() as u64)
    }
}

/// Iterate over the distinct values of a sorted slice.
fn distinct(items: &[Value]) -> impl Iterator<Item = &Value> {
    items
        .iter()
        .enumerate()
        .filter(|(i, v)| *i == 0 || items[i - 1] != **v)
        .map(|(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counted(pairs: &[(&str, u64)]) -> Bag {
        Bag::from_counted(
            pairs
                .iter()
                .map(|(s, m)| (Value::tuple([Value::sym(s)]), Natural::from(*m))),
        )
    }

    #[test]
    fn roundtrip() {
        let bag = counted(&[("a", 3), ("b", 1)]);
        let expanded = ExpandedBag::from_bag(&bag).unwrap();
        assert_eq!(expanded.len(), 4);
        assert_eq!(expanded.to_bag(), bag);
    }

    #[test]
    fn huge_multiplicities_rejected() {
        let bag = Bag::repeated(Value::sym("a"), Natural::pow2(40));
        assert!(ExpandedBag::from_bag(&bag).is_none());
    }

    #[test]
    fn operations_agree_with_counted_on_samples() {
        let b1 = counted(&[("a", 3), ("b", 1)]);
        let b2 = counted(&[("a", 1), ("c", 2)]);
        let e1 = ExpandedBag::from_bag(&b1).unwrap();
        let e2 = ExpandedBag::from_bag(&b2).unwrap();
        assert_eq!(e1.additive_union(&e2).to_bag(), b1.additive_union(&b2));
        assert_eq!(e1.subtract(&e2).to_bag(), b1.subtract(&b2));
        assert_eq!(e1.max_union(&e2).to_bag(), b1.max_union(&b2));
        assert_eq!(e1.intersect(&e2).to_bag(), b1.intersect(&b2));
        assert_eq!(e1.dedup().to_bag(), b1.dedup());
        assert_eq!(
            e1.product(&e2).unwrap().to_bag(),
            b1.product(&b2, u64::MAX).unwrap()
        );
    }

    #[test]
    fn destroy_agrees() {
        let inner1 = counted(&[("x", 2)]);
        let inner2 = counted(&[("y", 1)]);
        let mut outer = Bag::new();
        outer.insert_with_multiplicity(Value::Bag(inner1), Natural::from(2u64));
        outer.insert(Value::Bag(inner2));
        let expanded = ExpandedBag::from_bag(&outer).unwrap();
        assert_eq!(
            expanded.destroy().unwrap().to_bag(),
            outer.destroy().unwrap()
        );
    }
}
