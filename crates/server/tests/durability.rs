//! Server-level durability and robustness: restart recovery over real
//! TCP, writer-queue admission control, and idle-session timeouts.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use balg_core::schema::Database;
use balg_server::prelude::*;
use balg_sql::prelude::{database_from_rows, Catalog, SqlValue};

/// Fresh per-test scratch directory (no tempdir crate in the tree).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("balg-server-{tag}-{}-{n}", std::process::id()));
    if dir.exists() {
        let _ = std::fs::remove_dir_all(&dir);
    }
    dir
}

fn cleanup(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn durable_server_survives_restart() {
    let dir = scratch("restart");
    let catalog = Catalog::new().with_table("orders", &[("customer", false), ("qty", true)]);

    {
        let config = ServerConfig {
            data_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let server = SqlServer::spawn(
            "127.0.0.1:0",
            catalog,
            database_from_rows(&Catalog::new(), &[]).unwrap(),
            config,
        )
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();

        let reply = client
            .request("INSERT INTO orders VALUES ('ann', 3), ('bob', 5)")
            .unwrap();
        assert!(reply.ok, "{}", reply.text);
        let reply = client
            .request("CREATE VIEW big AS SELECT customer FROM orders WHERE qty >= 4")
            .unwrap();
        assert!(reply.ok, "{}", reply.text);

        // CHECKPOINT routes through the writer and compacts the log.
        let reply = client.request("CHECKPOINT").unwrap();
        assert!(reply.ok, "{}", reply.text);
        assert!(reply.text.contains("checkpoint complete"), "{}", reply.text);

        // A post-checkpoint write lands in the fresh WAL tail.
        let reply = client
            .request("INSERT INTO orders VALUES ('cleo', 9)")
            .unwrap();
        assert!(reply.ok, "{}", reply.text);

        let stats = client.request(":stats").unwrap();
        assert!(stats.ok);
        assert!(stats.text.contains("durable: lsn"), "{}", stats.text);
        server.shutdown();
    }

    // Reopen with an EMPTY catalog: schema, view, and data all come back
    // from the directory (metas + snapshot + WAL replay).
    let config = ServerConfig {
        data_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let server = SqlServer::spawn("127.0.0.1:0", Catalog::new(), Database::new(), config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    let rows = client.request("SELECT customer FROM orders").unwrap();
    assert!(rows.ok, "{}", rows.text);
    for name in ["ann", "bob", "cleo"] {
        assert!(rows.text.contains(name), "missing {name}: {}", rows.text);
    }
    let rows = client.request(":rows big").unwrap();
    assert!(rows.ok, "{}", rows.text);
    assert!(rows.text.contains("bob"), "{}", rows.text);
    assert!(rows.text.contains("cleo"), "{}", rows.text);
    assert!(!rows.text.contains("ann"), "{}", rows.text);
    assert_eq!(client.request(":check").unwrap(), Reply::ok("consistent"));
    let stats = client.request(":stats").unwrap();
    assert!(
        stats.text.contains("batches replayed at open"),
        "{}",
        stats.text
    );

    // The recovered instance keeps serving writes durably.
    let reply = client
        .request("INSERT INTO orders VALUES ('dave', 1)")
        .unwrap();
    assert!(reply.ok, "{}", reply.text);
    server.shutdown();
    cleanup(&dir);
}

#[test]
fn full_writer_queue_rejects_with_busy_instead_of_blocking() {
    // 600 seed rows make the cross-product view materialization a
    // genuinely slow write, so the writer is provably mid-job while we
    // probe the one-slot queue.
    let catalog = Catalog::new().with_table("t", &[("v", true)]);
    let rows: Vec<Vec<SqlValue>> = (0..600i64).map(|v| vec![SqlValue::Int(v)]).collect();
    let db = database_from_rows(&catalog, &[("t", rows)]).unwrap();
    let config = ServerConfig {
        writer_queue: 1,
        write_batch: 1,
        ..ServerConfig::default()
    };
    let server = SqlServer::spawn("127.0.0.1:0", catalog, db, config).unwrap();

    // Occupy the writer with the slow CREATE VIEW from a side thread.
    let addr = server.addr();
    let slow = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .request("CREATE VIEW pairs AS SELECT a.v, b.v FROM t a, t b")
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(100));
    // Fill the single queue slot from another side thread…
    let queued = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client.request("INSERT INTO t VALUES (1000)").unwrap()
    });
    std::thread::sleep(Duration::from_millis(50));
    // …so this write finds the queue full and is rejected immediately,
    // well before the slow job completes.
    let mut client = Client::connect(addr).unwrap();
    let started = std::time::Instant::now();
    let reply = client.request("INSERT INTO t VALUES (2000)").unwrap();
    assert!(!reply.ok, "{}", reply.text);
    assert!(reply.text.contains("busy"), "{}", reply.text);
    assert!(reply.text.contains("retry"), "{}", reply.text);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "busy reply should not wait for the slow writer"
    );

    let slow = slow.join().unwrap();
    assert!(slow.ok, "{}", slow.text);
    let queued = queued.join().unwrap();
    assert!(queued.ok, "{}", queued.text);

    // The rejection is observable, and the accepted writes all landed.
    let stats = client.request(":stats").unwrap();
    assert!(
        stats.text.contains("1 writes rejected busy"),
        "{}",
        stats.text
    );
    assert_eq!(client.request(":check").unwrap(), Reply::ok("consistent"));
    let rows = client.request("SELECT v FROM t WHERE v >= 1000").unwrap();
    assert_eq!(rows.text.lines().last(), Some("(1 rows)"), "{}", rows.text);
    server.shutdown();
}

#[test]
fn idle_sessions_are_closed_after_the_read_timeout() {
    let catalog = Catalog::new().with_table("t", &[("v", true)]);
    let db = database_from_rows(&catalog, &[]).unwrap();
    let config = ServerConfig {
        read_timeout: Some(Duration::from_millis(100)),
        ..ServerConfig::default()
    };
    let server = SqlServer::spawn("127.0.0.1:0", catalog, db, config).unwrap();

    let mut idle = Client::connect(server.addr()).unwrap();
    assert!(idle.request(":ping").unwrap().ok);
    std::thread::sleep(Duration::from_millis(400));
    // The server closed the session while we idled: the next request
    // fails instead of hanging.
    assert!(idle.request(":ping").is_err());

    // An active session keeps working, and the close is observable.
    let mut fresh = Client::connect(server.addr()).unwrap();
    assert!(fresh.request(":ping").unwrap().ok);
    let stats = fresh.request(":stats").unwrap();
    assert!(
        stats.text.contains("1 sessions closed idle"),
        "{}",
        stats.text
    );
    server.shutdown();
}
