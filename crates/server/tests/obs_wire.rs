//! Over-the-wire smoke for the observability surfaces: a live TCP
//! server answers `:profile` byte-identically to its serial twin, and
//! `:metrics` serves the process-global registry in Prometheus text
//! format with the server's own instruments present.
//!
//! Single test in this binary: it owns the process-global registry and
//! the deterministic-profile env var.

use balg_core::eval::Limits;
use balg_server::prelude::{Client, SerialTwin, ServerConfig, SqlServer};
use balg_sql::prelude::{database_from_rows, Catalog};

const INSERT: &str = "INSERT INTO g VALUES ('a', 'b'), ('b', 'c')";
const PROFILE: &str = ":profile project(select(x, eq(attr(x,2), attr(x,3)), product(g, g)), 1, 4)";

#[test]
fn profile_and_metrics_over_the_wire() {
    std::env::set_var(balg_obs::profile::PROFILE_TICKS_ENV, "1000");
    assert!(balg_obs::install_global(balg_obs::MetricsRegistry::new()));
    let catalog = Catalog::new().with_table("g", &[("src", false), ("dst", false)]);
    let db = database_from_rows(&catalog, &[]).unwrap();

    let server = SqlServer::spawn(
        "127.0.0.1:0",
        catalog.clone(),
        db.clone(),
        ServerConfig::default(),
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.request(INSERT).unwrap().ok);
    let profile = client.request(PROFILE).unwrap();
    assert!(profile.ok, "{}", profile.text);
    assert!(profile.text.contains("base g"), "{}", profile.text);
    assert!(profile.text.contains("total: "), "{}", profile.text);

    // Byte-equal with the serial twin replaying the same statements.
    let mut twin = SerialTwin::new(catalog, db, Limits::default());
    assert!(twin.execute(INSERT).ok);
    assert_eq!(twin.execute(PROFILE).text, profile.text);

    // `:metrics` renders the registry, including the server's own
    // instruments (registered at the first dispatch) and the evaluator's.
    let metrics = client.request(":metrics").unwrap();
    assert!(metrics.ok, "{}", metrics.text);
    assert!(
        metrics
            .text
            .contains("# TYPE balg_server_read_duration_ns histogram"),
        "{}",
        metrics.text
    );
    assert!(
        metrics
            .text
            .contains("# TYPE balg_server_write_duration_ns histogram"),
        "{}",
        metrics.text
    );
    assert!(metrics.text.contains("balg_eval_total"), "{}", metrics.text);
    assert!(
        metrics.text.contains("balg_server_queue_depth 0"),
        "{}",
        metrics.text
    );
    server.shutdown();
}
