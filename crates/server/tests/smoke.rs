//! End-to-end exercise of the served statement surface over real TCP.

use balg_core::eval::Limits;
use balg_server::prelude::*;
use balg_sql::prelude::{database_from_rows, Catalog, SqlValue};

fn spawn_default() -> SqlServer {
    let catalog = Catalog::new().with_table("orders", &[("customer", false), ("qty", true)]);
    let db = database_from_rows(&catalog, &[]).unwrap();
    SqlServer::spawn("127.0.0.1:0", catalog, db, ServerConfig::default()).unwrap()
}

#[test]
fn full_statement_surface_over_the_wire() {
    let server = spawn_default();
    let mut client = Client::connect(server.addr()).unwrap();

    assert_eq!(client.request(":ping").unwrap(), Reply::ok("pong"));
    assert_eq!(client.request(":seq").unwrap(), Reply::ok("0"));

    let reply = client
        .request("INSERT INTO orders VALUES ('ann', 3), ('bob', 5)")
        .unwrap();
    assert_eq!(reply, Reply::ok("orders: +2 -0"));
    // Read-your-writes: the ack implies the snapshot is already public.
    assert_eq!(client.request(":seq").unwrap(), Reply::ok("1"));

    let reply = client
        .request("CREATE VIEW big AS SELECT customer FROM orders WHERE qty >= 4")
        .unwrap();
    assert!(reply.ok, "{}", reply.text);
    let rows = client.request(":rows big").unwrap();
    assert!(rows.ok);
    assert!(rows.text.contains("bob"), "{}", rows.text);
    assert!(!rows.text.contains("ann"), "{}", rows.text);

    // One-shot queries answer from the same snapshot state.
    let select = client
        .request("SELECT customer FROM orders WHERE qty >= 4")
        .unwrap();
    assert_eq!(select.text, rows.text);

    // Runtime table declaration, then use it in a join.
    let reply = client.request(":table vip customer").unwrap();
    assert_eq!(reply, Reply::ok("table vip (1 columns)"));
    client.request("INSERT INTO vip VALUES ('bob')").unwrap();
    let join = client
        .request("SELECT o.customer FROM orders o, vip v WHERE o.customer = v.customer")
        .unwrap();
    assert!(join.ok);
    assert!(join.text.contains("bob"), "{}", join.text);

    assert_eq!(client.request(":check").unwrap(), Reply::ok("consistent"));
    assert_eq!(
        client.request(":check big").unwrap(),
        Reply::ok("consistent")
    );
    let stats = client.request(":stats").unwrap();
    assert!(stats.ok);
    assert!(stats.text.contains("batches"), "{}", stats.text);

    // Errors come back as error replies, not closed connections.
    let reply = client.request("INSERT INTO missing VALUES (1)").unwrap();
    assert!(!reply.ok);
    let reply = client.request(":rows nope").unwrap();
    assert_eq!(reply, Reply::err("unknown view nope"));
    let reply = client.request(":frob").unwrap();
    assert!(!reply.ok);
    let reply = client.request("SELECT nope FROM orders").unwrap();
    assert!(!reply.ok);

    // The session survives all of the above.
    assert_eq!(client.request(":ping").unwrap(), Reply::ok("pong"));
    server.shutdown();
}

#[test]
fn writes_become_visible_to_other_sessions_once_acked() {
    let server = spawn_default();
    let mut writer = Client::connect(server.addr()).unwrap();
    let mut reader = Client::connect(server.addr()).unwrap();

    writer
        .request("INSERT INTO orders VALUES ('cleo', 9)")
        .unwrap();
    // The ack happened-before this read, and publication happens before
    // the ack — so this session must see the row.
    let rows = reader.request("SELECT customer FROM orders").unwrap();
    assert!(rows.text.contains("cleo"), "{}", rows.text);
    assert_eq!(reader.request(":seq").unwrap(), Reply::ok("1"));
    server.shutdown();
}

#[test]
fn dropped_views_report_their_cause_over_the_wire() {
    let catalog = Catalog::new()
        .with_table("left_t", &[("val", false)])
        .with_table("right_t", &[("val", false)]);
    let db = database_from_rows(
        &catalog,
        &[(
            "left_t",
            vec![
                vec![SqlValue::Str("a".into())],
                vec![SqlValue::Str("b".into())],
            ],
        )],
    )
    .unwrap();
    let config = ServerConfig {
        limits: Limits {
            max_bag_elements: 4,
            ..Limits::default()
        },
        ..ServerConfig::default()
    };
    let server = SqlServer::spawn("127.0.0.1:0", catalog, db, config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    client
        .request("CREATE VIEW pairs AS SELECT l.val, r.val FROM left_t l, right_t r")
        .unwrap();
    // The cross join outgrows the element budget: maintenance and the
    // degraded re-derivation both fail, so the writer drops the view and
    // the INSERT acks with the failure.
    let reply = client
        .request("INSERT INTO right_t VALUES ('x'), ('y'), ('z')")
        .unwrap();
    assert!(!reply.ok);
    assert!(reply.text.contains("pairs"), "{}", reply.text);

    // The base update itself landed …
    let rows = client.request("SELECT val FROM right_t").unwrap();
    assert_eq!(rows.text.lines().last(), Some("(3 rows)"));
    // … and the dropped view answers with its cause, not a bare unknown.
    let reply = client.request(":rows pairs").unwrap();
    assert!(!reply.ok);
    assert!(
        reply.text.contains("dropped after failed re-derivation"),
        "{}",
        reply.text
    );
    let reply = client.request(":check").unwrap();
    assert!(!reply.ok);
    assert!(reply.text.contains("dropped"), "{}", reply.text);
    let stats = client.request(":stats").unwrap();
    assert!(stats.text.contains("dropped view pairs"), "{}", stats.text);
    server.shutdown();
}

#[test]
fn oversized_frames_close_the_connection() {
    let catalog = Catalog::new().with_table("t", &[("v", false)]);
    let db = database_from_rows(&catalog, &[]).unwrap();
    let config = ServerConfig {
        max_frame: 64,
        ..ServerConfig::default()
    };
    let server = SqlServer::spawn("127.0.0.1:0", catalog, db, config).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.request(":ping").unwrap().ok);
    let huge = format!("SELECT v FROM t WHERE v = '{}'", "x".repeat(256));
    // The server treats the oversized frame as a protocol violation and
    // drops the session rather than resynchronizing mid-stream.
    assert!(client.request(&huge).is_err());
    // A fresh session still works.
    let mut client = Client::connect(server.addr()).unwrap();
    assert!(client.request(":ping").unwrap().ok);
    server.shutdown();
}
