//! Differential test: the concurrent server against its serial twin.
//!
//! The server and [`SerialTwin`] execute statements through the same two
//! functions, so any divergence observed here is a defect in the
//! concurrency machinery itself — snapshot capture, publication order,
//! the writer queue, or the wire protocol — which is exactly what this
//! suite puts under real thread interleavings:
//!
//! 1. a scripted seeded write stream replayed through one server client
//!    must ack **byte-identically** to the twin, including errors;
//! 2. many concurrent reader sessions over the then-quiescent server
//!    must answer every read byte-identically to the twin;
//! 3. readers racing the writer must only ever observe states the
//!    serial replay passes through (prefix states), with `:seq`
//!    monotonically non-decreasing per session.

use std::sync::{Arc, Barrier};
use std::thread;

use balg_core::eval::Limits;
use balg_server::prelude::*;
use balg_sql::prelude::{database_from_rows, Catalog};

/// Deterministic statement stream: a fixed LCG, so every run and both
/// executions see the same statements in the same order.
struct Stream {
    state: u64,
}

impl Stream {
    fn new(seed: u64) -> Stream {
        Stream { state: seed }
    }

    fn next(&mut self, bound: u64) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 33) % bound
    }

    /// One write statement. Deletes may target absent rows — the
    /// resulting `NegativeBase` error is part of the scripted behavior
    /// and must render identically on both sides.
    fn write_stmt(&mut self) -> String {
        let customer = format!("c{}", self.next(6));
        let qty = 1 + self.next(5);
        if self.next(4) == 0 {
            format!("DELETE FROM orders VALUES ('{customer}', {qty})")
        } else {
            format!("INSERT INTO orders VALUES ('{customer}', {qty})")
        }
    }
}

fn catalog() -> Catalog {
    Catalog::new().with_table("orders", &[("customer", false), ("qty", true)])
}

fn spawn_pair() -> (SqlServer, SerialTwin) {
    let catalog = catalog();
    let db = database_from_rows(&catalog, &[]).unwrap();
    let server = SqlServer::spawn(
        "127.0.0.1:0",
        catalog.clone(),
        db.clone(),
        ServerConfig::default(),
    )
    .unwrap();
    let twin = SerialTwin::new(catalog, db, Limits::default());
    (server, twin)
}

/// The read suite both sides answer during the quiescent phases.
const READ_SUITE: &[&str] = &[
    "SELECT customer, qty FROM orders",
    "SELECT customer FROM orders WHERE qty >= 4",
    "SELECT DISTINCT customer FROM orders",
    "SELECT SUM(qty) FROM orders",
    ":rows big",
    ":rows per_customer",
    ":rows nope",
    ":seq",
    ":ping",
];

#[test]
fn concurrent_run_equals_serial_replay() {
    let (server, mut twin) = spawn_pair();
    let mut writer = Client::connect(server.addr()).unwrap();

    // ---- Phase 1: scripted writes, byte-identical acks ----------------
    let mut stream = Stream::new(0xBA6_A16EB);
    let mut script = vec![
        "CREATE VIEW big AS SELECT customer FROM orders WHERE qty >= 4".to_owned(),
        "CREATE VIEW per_customer AS SELECT customer, SUM(qty) FROM orders GROUP BY customer"
            .to_owned(),
    ];
    script.extend((0..40).map(|_| stream.write_stmt()));
    script.push(":check".to_owned());
    script.push(":stats".to_owned());

    for line in &script {
        let served = writer.request(line).unwrap();
        let replayed = twin.execute(line);
        assert_eq!(served, replayed, "divergent reply to {line:?}");
    }

    // ---- Phase 2: concurrent readers over the quiescent server --------
    let expected: Vec<Reply> = READ_SUITE.iter().map(|line| twin.execute(line)).collect();
    let readers = 8;
    let rounds = 25;
    let barrier = Arc::new(Barrier::new(readers));
    let addr = server.addr();
    let handles: Vec<_> = (0..readers)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let expected = expected.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                for _ in 0..rounds {
                    for (line, want) in READ_SUITE.iter().zip(&expected) {
                        let got = client.request(line).unwrap();
                        assert_eq!(&got, want, "divergent concurrent read of {line:?}");
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // verify_all agrees over the wire and in process.
    assert_eq!(writer.request(":check").unwrap(), twin.execute(":check"));
    server.shutdown();
}

#[test]
fn racing_readers_only_observe_serial_prefix_states() {
    let (server, mut twin) = spawn_pair();

    // Pre-register the view both sides will watch.
    let setup = "CREATE VIEW big AS SELECT customer FROM orders WHERE qty >= 4";
    let mut writer = Client::connect(server.addr()).unwrap();
    assert_eq!(writer.request(setup).unwrap(), twin.execute(setup));

    // The serial replay enumerates every state the database passes
    // through; a reader may land between any two writes but never
    // anywhere else.
    let mut stream = Stream::new(0x5EED);
    let writes: Vec<String> = (0..60).map(|_| stream.write_stmt()).collect();
    let mut legal_states = vec![twin.execute(":rows big").text];
    for line in &writes {
        twin.execute(line);
        legal_states.push(twin.execute(":rows big").text);
    }

    let readers = 6;
    let start = Arc::new(Barrier::new(readers + 1));
    let addr = server.addr();
    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let start = Arc::clone(&start);
            let legal = legal_states.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                start.wait();
                let mut last_seq = 0u64;
                let mut observed = 0usize;
                loop {
                    let seq: u64 = client.request(":seq").unwrap().text.parse().unwrap();
                    assert!(seq >= last_seq, "seq went backwards: {last_seq} -> {seq}");
                    last_seq = seq;
                    let rows = client.request(":rows big").unwrap();
                    assert!(
                        legal.contains(&rows.text),
                        "observed a state outside the serial replay:\n{}",
                        rows.text
                    );
                    observed += 1;
                    // 61 = the view registration before the race + 60 writes.
                    if seq >= 61 {
                        break;
                    }
                }
                observed
            })
        })
        .collect();

    start.wait();
    for line in &writes {
        // Acks may be errors (scripted deletes of absent rows) — the
        // stream carries on either way, exactly as the twin did.
        let _ = writer.request(line).unwrap();
    }

    let total_reads: usize = reader_handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_reads >= readers, "readers exited without reading");

    // After the race settles, the served state is the twin's final state.
    let final_rows = writer.request(":rows big").unwrap();
    assert_eq!(final_rows.text, *legal_states.last().unwrap());
    assert_eq!(writer.request(":check").unwrap(), twin.execute(":check"));
    server.shutdown();
}

#[test]
fn concurrent_writers_serialize_without_loss() {
    // Several sessions insert disjoint rows concurrently; the writer
    // serializes them in some order, but the final state must hold every
    // acked row — checked against a twin replaying the same multiset of
    // writes (insert-only, so order cannot matter).
    let (server, mut twin) = spawn_pair();
    let sessions = 6;
    let per_session = 10;
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(sessions));
    let handles: Vec<_> = (0..sessions)
        .map(|s| {
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                barrier.wait();
                for i in 0..per_session {
                    let line = format!("INSERT INTO orders VALUES ('w{s}', {})", 1 + i % 5);
                    assert!(client.request(&line).unwrap().ok);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    for s in 0..sessions {
        for i in 0..per_session {
            let line = format!("INSERT INTO orders VALUES ('w{s}', {})", 1 + i % 5);
            assert!(twin.execute(&line).ok);
        }
    }
    let mut client = Client::connect(addr).unwrap();
    for line in [
        "SELECT customer, qty FROM orders",
        "SELECT SUM(qty) FROM orders",
        ":seq",
    ] {
        assert_eq!(
            client.request(line).unwrap(),
            twin.execute(line),
            "divergent post-race read of {line:?}"
        );
    }
    server.shutdown();
}
