//! Poison-recovering lock accessors.
//!
//! A session thread that panics while holding the snapshot `RwLock` (or
//! the writer-handle `Mutex`) poisons it; `.unwrap()` on every later
//! access would then propagate that one panic into **all** sessions, the
//! writer, and the shutdown path — one bad request becoming a permanent
//! full-server outage. Both guarded values are structurally valid at
//! every instant a panic can strike: the published snapshot is an `Arc`
//! swapped in a single assignment, and the writer handle is an `Option`
//! of a channel sender. Recovering the guard with
//! [`PoisonError::into_inner`] is therefore sound, and these helpers do
//! it uniformly so no call site can reintroduce an `unwrap`.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock a mutex, recovering the guard if a panicking holder poisoned it.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-lock an `RwLock`, recovering the guard from poison.
pub fn read<T>(rw: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    rw.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-lock an `RwLock`, recovering the guard from poison.
pub fn write<T>(rw: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    rw.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    /// A panic while holding the mutex poisons it; the helper must still
    /// hand out the guard (and the guarded value must be intact).
    #[test]
    fn mutex_survives_poisoning_holder() {
        let shared = Arc::new(Mutex::new(7u64));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("session thread dies while holding the lock");
        })
        .join();
        assert!(shared.is_poisoned());
        assert_eq!(*lock(&shared), 7);
        *lock(&shared) = 8;
        assert_eq!(*lock(&shared), 8);
    }

    /// Same for the RwLock helpers, in both directions.
    #[test]
    fn rwlock_survives_poisoning_holder() {
        let shared = Arc::new(RwLock::new(String::from("snapshot")));
        let poisoner = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.write().unwrap();
            panic!("writer dies while publishing");
        })
        .join();
        assert!(shared.is_poisoned());
        assert_eq!(*read(&shared), "snapshot");
        write(&shared).push_str("-2");
        assert_eq!(*read(&shared), "snapshot-2");
    }
}
