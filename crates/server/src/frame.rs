//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! A frame is a big-endian `u32` payload length followed by the payload.
//! Requests carry one UTF-8 statement line. Replies carry one tag byte
//! (`0` ok, `1` error) followed by the UTF-8 reply text. Frames larger
//! than the configured maximum are a protocol violation — the connection
//! is not recoverable past one, so reads fail rather than resynchronize.

use std::io::{self, Read, Write};

use crate::exec::Reply;

/// Default maximum frame payload (1 MiB).
pub const MAX_FRAME: u32 = 1 << 20;

/// Initial payload-buffer capacity: allocation beyond this tracks bytes
/// actually received, never the peer's claimed length alone.
const INITIAL_PAYLOAD_CHUNK: u32 = 8 * 1024;

/// Write one frame.
pub fn write_frame(writer: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large for u32"))?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

/// Read one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); EOF inside a frame is an error.
pub fn read_frame(reader: &mut impl Read, max: u32) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < len_bytes.len() {
        match reader.read(&mut len_bytes[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream closed inside a frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max} byte limit"),
        ));
    }
    // Grow the buffer as bytes arrive instead of pre-allocating the full
    // claimed length: a peer that sends a maximum-sized header and then
    // stalls or disconnects pins only the memory for what it actually
    // delivered — with a permissive `max` the old `vec![0; len]` was a
    // 4-byte-costs-4-GiB amplification.
    let mut payload = Vec::with_capacity(len.min(INITIAL_PAYLOAD_CHUNK) as usize);
    let received = reader.take(u64::from(len)).read_to_end(&mut payload)?;
    if received < len as usize {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "stream closed inside a frame payload",
        ));
    }
    Ok(Some(payload))
}

/// Encode a reply payload: tag byte then text.
pub fn encode_reply(reply: &Reply) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + reply.text.len());
    payload.push(u8::from(!reply.ok));
    payload.extend_from_slice(reply.text.as_bytes());
    payload
}

/// Decode a reply payload.
pub fn decode_reply(payload: &[u8]) -> io::Result<Reply> {
    let (&tag, text) = payload
        .split_first()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty reply frame"))?;
    let text = std::str::from_utf8(text)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "reply text is not UTF-8"))?;
    match tag {
        0 => Ok(Reply::ok(text)),
        1 => Ok(Reply::err(text)),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown reply tag {other}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, b"SELECT 1").unwrap();
        write_frame(&mut buffer, b"").unwrap();
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME).unwrap().as_deref(),
            Some(&b"SELECT 1"[..])
        );
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert_eq!(read_frame(&mut cursor, MAX_FRAME).unwrap(), None);
    }

    #[test]
    fn oversized_and_truncated_frames_are_errors() {
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &[7u8; 64]).unwrap();
        let mut cursor = io::Cursor::new(buffer.clone());
        assert_eq!(
            read_frame(&mut cursor, 16).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        buffer.truncate(10); // header + partial payload
        let mut cursor = io::Cursor::new(buffer);
        assert!(read_frame(&mut cursor, MAX_FRAME).is_err());
        let mut cursor = io::Cursor::new(vec![0u8, 0]); // partial header
        assert_eq!(
            read_frame(&mut cursor, MAX_FRAME).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    /// Adversarial header: a peer claims the largest possible payload a
    /// permissive limit admits and sends nothing. The reader must fail
    /// with a clean EOF error after allocating proportionally to the
    /// zero bytes received — the eager `vec![0; len]` this replaces
    /// would have committed 4 GiB before reading the first body byte.
    #[test]
    fn claimed_max_header_with_no_body_fails_without_preallocation() {
        let mut frame = u32::MAX.to_be_bytes().to_vec();
        let mut cursor = io::Cursor::new(frame.clone());
        assert_eq!(
            read_frame(&mut cursor, u32::MAX).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Same with a token body: still EOF, not a hang or huge alloc.
        frame.extend_from_slice(b"tiny");
        let mut cursor = io::Cursor::new(frame);
        assert_eq!(
            read_frame(&mut cursor, u32::MAX).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    /// A frame that claims exactly the limit but truncates mid-body is an
    /// EOF error, and a full-length one at the limit still round-trips.
    #[test]
    fn at_limit_frames_truncated_and_complete() {
        let max = 64u32;
        let mut frame = max.to_be_bytes().to_vec();
        frame.extend_from_slice(&[7u8; 5]);
        let mut cursor = io::Cursor::new(frame);
        assert_eq!(
            read_frame(&mut cursor, max).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &[9u8; 64]).unwrap();
        let mut cursor = io::Cursor::new(buffer);
        assert_eq!(
            read_frame(&mut cursor, max).unwrap().as_deref(),
            Some(&[9u8; 64][..])
        );
    }

    #[test]
    fn replies_roundtrip() {
        for reply in [Reply::ok("3 rows"), Reply::err("unknown view v")] {
            assert_eq!(decode_reply(&encode_reply(&reply)).unwrap(), reply);
        }
        assert!(decode_reply(&[]).is_err());
        assert!(decode_reply(&[9, b'x']).is_err());
    }
}
