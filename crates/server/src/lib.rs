//! # balg-server — a concurrent SQL service over the incremental runtime
//!
//! Serves the [`balg_sql::SqlRuntime`] statement surface (queries,
//! `CREATE VIEW`, `INSERT`/`DELETE`, consistency checks) to many
//! concurrent TCP sessions, with **snapshot isolation** built on the
//! representation choices the rest of the workspace already made: bags
//! are immutable sorted slices behind `Arc`, so an internally consistent
//! picture of the whole database is one `Arc` clone away, and a reader
//! that pinned it can evaluate arbitrary queries without ever
//! coordinating with the writer.
//!
//! The concurrency model is single-writer / multi-reader:
//!
//! - **Reads** (`SELECT …`, `:rows`, `:seq`, `:ping`) pin the current
//!   [`exec::Snapshot`] and evaluate lock-free on the session thread.
//! - **Writes** (`INSERT`, `DELETE`, `CREATE VIEW`, `:table`, `:check`,
//!   `:stats`) are serialized through one writer thread that applies
//!   them through the ℤ-bag incremental engine, publishes a fresh
//!   snapshot, **then** acknowledges — so acknowledged writes are
//!   visible to every subsequent read (read-your-writes).
//!
//! Correctness leans on an *equality-by-construction* design: the server
//! and the in-process [`exec::SerialTwin`] execute statements through
//! the same two functions ([`exec::execute_read`] /
//! [`exec::execute_write`]), so a concurrent run must agree
//! byte-for-byte with a serial replay — which the differential test
//! suite checks under real thread interleavings.
//!
//! ```
//! use balg_server::prelude::*;
//! use balg_sql::prelude::{database_from_rows, Catalog};
//!
//! let catalog = Catalog::new().with_table("t", &[("name", false), ("qty", true)]);
//! let db = database_from_rows(&catalog, &[]).unwrap();
//! let server = SqlServer::spawn("127.0.0.1:0", catalog, db, ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let reply = client.request("INSERT INTO t VALUES ('a', 2)").unwrap();
//! assert_eq!(reply.text, "t: +1 -0");
//! let reply = client.request("SELECT SUM(qty) FROM t").unwrap();
//! assert!(reply.text.contains("2"));
//! server.shutdown();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod client;
pub mod exec;
pub mod frame;
pub mod lock;
pub mod server;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::client::Client;
    pub use crate::exec::{
        execute_read, execute_write, metrics_reply, route, snapshot_of, Reply, Route, SerialTwin,
        Snapshot,
    };
    pub use crate::server::{ServerConfig, SqlServer};
}

pub use prelude::*;
