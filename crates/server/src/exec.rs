//! The statement surface shared by the concurrent server and its serial
//! twin.
//!
//! Everything a session can say is executed by exactly two functions:
//! [`execute_read`] over an immutable [`Snapshot`], and [`execute_write`]
//! over the single mutable [`SqlRuntime`]. The TCP server and the
//! in-process [`SerialTwin`] both call these — so a concurrent run and a
//! serial replay of the same statements produce **byte-identical**
//! replies by construction, and the differential test suite is left to
//! validate what actually differs between them: snapshot publication,
//! ordering, and read-your-writes.

use std::collections::BTreeMap;

use balg_core::bag::Bag;
use balg_core::eval::{Evaluator, Limits};
use balg_core::schema::Database;
use balg_incremental::UpdateError;
use balg_sql::ast::Query;
use balg_sql::prelude::{
    compile_query, decode_result, parse_statement, Catalog, Column, QueryResult, Response,
    SqlError, SqlRuntime, Statement,
};

/// One reply to one statement: success flag plus the rendered text.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Reply {
    /// `false` means `text` is an error message.
    pub ok: bool,
    /// The rendered result or error.
    pub text: String,
}

impl Reply {
    /// A success reply.
    pub fn ok(text: impl Into<String>) -> Reply {
        Reply {
            ok: true,
            text: text.into(),
        }
    }

    /// An error reply.
    pub fn err(text: impl Into<String>) -> Reply {
        Reply {
            ok: false,
            text: text.into(),
        }
    }
}

/// Which side of the runtime a statement needs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Route {
    /// Answered from a pinned snapshot, lock-free, any session thread.
    Read,
    /// Serialized through the single writer.
    Write,
}

/// Classify a statement line. Total — never errors; malformed input is
/// routed as a read and rejected there, so both sides render the same
/// parse errors.
pub fn route(line: &str) -> Route {
    let line = line.trim_start();
    if let Some(rest) = line.strip_prefix(':') {
        let cmd = rest.split_whitespace().next().unwrap_or("");
        return match cmd {
            // Need the live runtime (view expressions, stats counters,
            // catalog mutation) — serialized behind the writer.
            "check" | "stats" | "table" => Route::Write,
            // :rows, :seq, :ping, and anything unknown.
            _ => Route::Read,
        };
    }
    let first = line
        .split_whitespace()
        .next()
        .unwrap_or("")
        .to_ascii_uppercase();
    match first.as_str() {
        "CREATE" | "INSERT" | "DELETE" | "CHECKPOINT" => Route::Write,
        _ => Route::Read,
    }
}

/// An immutable, internally consistent picture of the database: what a
/// reader session pins (one `Arc` clone) and evaluates against without
/// any coordination with the writer. Bags are copy-on-write behind `Arc`,
/// so building one of these per write batch clones maps of pointers, not
/// data.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Writer-serialized statement count at publication time (monotonic).
    pub seq: u64,
    /// The table catalog.
    pub catalog: Catalog,
    /// The base bags.
    pub db: Database,
    /// Maintained view results with their output shapes.
    pub views: BTreeMap<String, (Bag, Vec<Column>)>,
    /// Views the runtime dropped, with the rendered failure cause.
    pub dropped: BTreeMap<String, String>,
    /// Evaluation budgets for one-shot queries.
    pub limits: Limits,
    /// Partition-count override for one-shot query evaluators (`None`
    /// inherits the process-wide default). Carried on the snapshot so
    /// reader sessions honor the server's `--threads` setting without
    /// touching process-global state.
    pub parallel_chunks: Option<usize>,
}

/// Capture the runtime's current state as a [`Snapshot`] stamped `seq`.
pub fn snapshot_of(rt: &SqlRuntime, seq: u64) -> Snapshot {
    let runtime = rt.runtime();
    let mut views = BTreeMap::new();
    for (name, view) in runtime.views() {
        if let Some(columns) = rt.view_output(name) {
            views.insert(name.to_owned(), (view.result().clone(), columns.to_vec()));
        }
    }
    let dropped = runtime
        .dropped()
        .map(|(name, record)| (name.to_owned(), record.cause.to_string()))
        .collect();
    Snapshot {
        seq,
        catalog: rt.catalog().clone(),
        db: runtime.database().clone(),
        views,
        dropped,
        limits: runtime.limits().clone(),
        parallel_chunks: rt.parallel_threads(),
    }
}

fn split_command(rest: &str) -> (&str, &str) {
    match rest.split_once(char::is_whitespace) {
        Some((cmd, args)) => (cmd, args.trim()),
        None => (rest, ""),
    }
}

/// Execute a read-routed statement against a pinned snapshot.
pub fn execute_read(snap: &Snapshot, line: &str) -> Reply {
    let line = line.trim();
    if let Some(rest) = line.strip_prefix(':') {
        let (cmd, args) = split_command(rest);
        return match cmd {
            "ping" => Reply::ok("pong"),
            "seq" => Reply::ok(snap.seq.to_string()),
            "rows" => match snapshot_view_rows(snap, args) {
                Ok(result) => Reply::ok(Response::Rows(result).to_string()),
                Err(message) => Reply::err(message),
            },
            // Pure function of the catalog — answered from the snapshot,
            // lock-free, so the concurrent server and the serial twin
            // render byte-identical reports by construction.
            "analyze" => match balg_core::parse::parse_expr(args) {
                Err(e) => Reply::err(e.to_string()),
                Ok(expr) => match balg_core::analyze::analyze(&expr, &snap.catalog.to_schema()) {
                    Err(e) => Reply::err(format!("analysis error: {e}")),
                    Ok(facts) => Reply::ok(balg_core::analyze::render_report(&expr, &facts)),
                },
            },
            // One renderer (`balg_core::profile`) shared with balg-cli
            // and the serial twin, evaluated over the pinned snapshot's
            // bases plus view results — byte-equal across surfaces by
            // construction (deterministic when BALG_PROFILE_TICKS is set).
            "profile" => match balg_core::parse::parse_expr(args) {
                Err(e) => Reply::err(e.to_string()),
                Ok(expr) => {
                    let mut db = snap.db.clone();
                    for (name, (bag, _)) in &snap.views {
                        db.insert(name, bag.clone());
                    }
                    Reply::ok(balg_core::profile::profile_expr(
                        &expr,
                        &db,
                        snap.limits.clone(),
                    ))
                }
            },
            "metrics" => metrics_reply(),
            other => Reply::err(format!("unknown command :{other}")),
        };
    }
    match parse_statement(line) {
        Ok(Statement::Query(query)) => match run_snapshot_query(snap, &query) {
            Ok(result) => Reply::ok(Response::Rows(result).to_string()),
            Err(e) => Reply::err(e.to_string()),
        },
        // route() sends CREATE/INSERT/DELETE to the writer; reaching this
        // arm means a caller bypassed route().
        Ok(_) => Reply::err("update statements must go through the writer"),
        Err(e) => Reply::err(e.to_string()),
    }
}

/// The decoded rows of a maintained view as of the snapshot. Dropped
/// views answer with their failure cause — exactly the error the live
/// runtime would give — never a bare "unknown view".
fn snapshot_view_rows(snap: &Snapshot, name: &str) -> Result<QueryResult, String> {
    match snap.views.get(name) {
        Some((bag, columns)) => decode_result(bag, columns.clone()).map_err(|e| e.to_string()),
        None => {
            let error = match snap.dropped.get(name) {
                Some(cause) => UpdateError::ViewDropped {
                    view: name.to_owned(),
                    cause: cause.clone(),
                },
                None => UpdateError::UnknownView(name.to_owned()),
            };
            Err(SqlError::Update(error).to_string())
        }
    }
}

/// One-shot query over the snapshot's base bags — the same compile and
/// decode pipeline `SqlRuntime` runs, against the pinned database.
fn run_snapshot_query(snap: &Snapshot, query: &Query) -> Result<QueryResult, SqlError> {
    let compiled = compile_query(query, &snap.catalog).map_err(SqlError::Compile)?;
    let mut evaluator = Evaluator::new(&snap.db, snap.limits.clone());
    if let Some(chunks) = snap.parallel_chunks {
        evaluator.set_parallel_threads(chunks);
    }
    let bag = evaluator.eval_bag(&compiled.expr).map_err(SqlError::Eval)?;
    decode_result(&bag, compiled.output)
}

/// Execute a write-routed statement against the live runtime (the single
/// writer's side).
pub fn execute_write(rt: &mut SqlRuntime, line: &str) -> Reply {
    let line = line.trim();
    if let Some(rest) = line.strip_prefix(':') {
        let (cmd, args) = split_command(rest);
        return match cmd {
            "check" => {
                let result = if args.is_empty() {
                    rt.runtime().verify_all()
                } else {
                    rt.runtime().verify(args)
                };
                match result {
                    Ok(true) => Reply::ok("consistent"),
                    Ok(false) => Reply::err("INCONSISTENT"),
                    Err(e) => Reply::err(e.to_string()),
                }
            }
            "stats" => Reply::ok(render_stats(rt)),
            "table" => declare_table(rt, args),
            other => Reply::err(format!("unknown command :{other}")),
        };
    }
    match rt.execute(line) {
        Ok(response) => Reply::ok(response.to_string()),
        Err(e) => Reply::err(e.to_string()),
    }
}

/// `:table NAME col[:int] ...` — declare a fresh empty table.
fn declare_table(rt: &mut SqlRuntime, args: &str) -> Reply {
    let mut parts = args.split_whitespace();
    let Some(name) = parts.next() else {
        return Reply::err("usage: :table NAME col[:int] ...");
    };
    let columns: Vec<(String, bool)> = parts
        .map(|spec| match spec.strip_suffix(":int") {
            Some(column) => (column.to_owned(), true),
            None => (spec.to_owned(), false),
        })
        .collect();
    if columns.is_empty() {
        return Reply::err("usage: :table NAME col[:int] ...");
    }
    let borrowed: Vec<(&str, bool)> = columns
        .iter()
        .map(|(column, numeric)| (column.as_str(), *numeric))
        .collect();
    match rt.declare_table(name, &borrowed) {
        Ok(()) => Reply::ok(format!("table {name} ({} columns)", columns.len())),
        Err(e) => Reply::err(e.to_string()),
    }
}

/// The `:metrics` text: the process-global registry rendered in
/// Prometheus exposition format. Shared by the server's dispatch and the
/// serial twin (both reach it through [`execute_read`]).
pub fn metrics_reply() -> Reply {
    match balg_obs::global() {
        Some(registry) => Reply::ok(registry.render_prometheus()),
        None => Reply::err("no metrics registry installed"),
    }
}

/// The `:stats` text — [`balg_incremental::render_stats`], the renderer
/// every surface shares, so the server and balg-cli report identically.
fn render_stats(rt: &SqlRuntime) -> String {
    balg_incremental::render_stats(rt.runtime(), rt.durability().as_ref())
}

/// The serial oracle: the same statement surface executed in-process on
/// one thread, one statement at a time. Reads run [`execute_read`] over a
/// freshly captured snapshot; writes run [`execute_write`] and advance
/// the sequence counter exactly as the server's writer thread does. A
/// concurrent run that serializes to the same statement order must
/// produce byte-identical replies.
pub struct SerialTwin {
    rt: SqlRuntime,
    seq: u64,
}

impl SerialTwin {
    /// A twin over a catalog and an initial database.
    pub fn new(catalog: Catalog, db: Database, limits: Limits) -> SerialTwin {
        SerialTwin {
            rt: SqlRuntime::with_limits(catalog, db, limits),
            seq: 0,
        }
    }

    /// Bound the index cache, mirroring the server's configuration.
    pub fn set_index_capacity(&mut self, capacity: usize) {
        self.rt.set_index_capacity(capacity);
    }

    /// Execute one statement the way the server would.
    pub fn execute(&mut self, line: &str) -> Reply {
        match route(line) {
            Route::Read => execute_read(&snapshot_of(&self.rt, self.seq), line),
            Route::Write => {
                let reply = execute_write(&mut self.rt, line);
                self.seq += 1;
                reply
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use balg_sql::prelude::database_from_rows;

    fn catalog() -> Catalog {
        Catalog::new().with_table("orders", &[("customer", false), ("qty", true)])
    }

    fn twin() -> SerialTwin {
        let catalog = catalog();
        let db = database_from_rows(&catalog, &[]).unwrap();
        SerialTwin::new(catalog, db, Limits::default())
    }

    #[test]
    fn routing_is_by_statement_kind() {
        assert_eq!(route("SELECT * FROM orders"), Route::Read);
        assert_eq!(route("  select 1 from t"), Route::Read);
        assert_eq!(route("INSERT INTO orders VALUES ('a', 1)"), Route::Write);
        assert_eq!(route("delete from orders values ('a', 1)"), Route::Write);
        assert_eq!(route("CREATE VIEW v AS SELECT * FROM orders"), Route::Write);
        assert_eq!(route(":rows v"), Route::Read);
        assert_eq!(route(":seq"), Route::Read);
        assert_eq!(route(":ping"), Route::Read);
        assert_eq!(route(":analyze dedup(orders)"), Route::Read);
        assert_eq!(route(":check"), Route::Write);
        assert_eq!(route(":stats"), Route::Write);
        assert_eq!(route(":table t a b:int"), Route::Write);
        assert_eq!(route("garbage ..."), Route::Read);
    }

    #[test]
    fn twin_statement_surface() {
        let mut twin = twin();
        assert_eq!(twin.execute(":ping"), Reply::ok("pong"));
        assert_eq!(twin.execute(":seq"), Reply::ok("0"));
        let reply = twin.execute("INSERT INTO orders VALUES ('ann', 3), ('bob', 5)");
        assert_eq!(reply, Reply::ok("orders: +2 -0"));
        assert_eq!(twin.execute(":seq"), Reply::ok("1"));
        let reply = twin.execute("CREATE VIEW big AS SELECT customer FROM orders WHERE qty >= 4");
        assert!(reply.ok, "{}", reply.text);
        let rows = twin.execute(":rows big");
        assert!(rows.ok);
        assert!(rows.text.contains("bob"), "{}", rows.text);
        let select = twin.execute("SELECT customer FROM orders WHERE qty >= 4");
        assert_eq!(rows.text, select.text);
        assert_eq!(twin.execute(":check"), Reply::ok("consistent"));
        let stats = twin.execute(":stats");
        assert!(stats.text.contains("batches"), "{}", stats.text);
    }

    #[test]
    fn analyze_over_the_statement_surface() {
        let mut twin = twin();
        let reply = twin.execute(":analyze dedup(project(orders, 1))");
        assert!(reply.ok, "{}", reply.text);
        assert!(reply.text.contains("type: {{[U]}}"), "{}", reply.text);
        assert!(reply.text.contains("duplicate-free"), "{}", reply.text);
        assert!(reply.text.contains("orders: non-linear"), "{}", reply.text);
        // The reply is byte-equal to what execute_read renders over a
        // fresh snapshot — the twin IS that path, so a second pinned
        // snapshot must agree exactly.
        let snap = snapshot_of(
            &SqlRuntime::with_limits(
                catalog(),
                database_from_rows(&catalog(), &[]).unwrap(),
                Limits::default(),
            ),
            0,
        );
        let direct = execute_read(&snap, ":analyze dedup(project(orders, 1))");
        assert_eq!(reply, direct);
        // Errors are replies, not panics, and carry the analyzer text.
        let bad = twin.execute(":analyze attr(orders, 0)");
        assert!(!bad.ok);
        assert!(bad.text.contains("1-based"), "{}", bad.text);
        let blow = twin.execute(":analyze powerset(orders)");
        assert!(blow.ok, "analysis of a blowup query still reports facts");
        assert!(blow.text.contains("TooLarge risk"), "{}", blow.text);
    }

    #[test]
    fn twin_declares_tables_and_reports_errors() {
        let mut twin = twin();
        let reply = twin.execute(":table vip customer level:int");
        assert_eq!(reply, Reply::ok("table vip (2 columns)"));
        assert!(twin.execute("INSERT INTO vip VALUES ('ann', 2)").ok);
        let dup = twin.execute(":table orders x");
        assert!(!dup.ok);
        assert!(dup.text.contains("already a table"), "{}", dup.text);
        let missing = twin.execute(":rows nope");
        assert_eq!(missing, Reply::err("unknown view nope"));
        let bad = twin.execute("SELECT nope FROM orders");
        assert!(!bad.ok);
        let unknown = twin.execute(":frob");
        assert!(!unknown.ok);
    }
}
