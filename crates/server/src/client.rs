//! A minimal blocking client for the frame protocol.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::exec::Reply;
use crate::frame::{decode_reply, read_frame, write_frame, MAX_FRAME};

/// One connection to a [`crate::server::SqlServer`]. Requests are
/// strictly request/reply in order; a client is one session (clone the
/// connection count, not the client, for concurrency).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a serving address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one statement line, block for its reply.
    pub fn request(&mut self, line: &str) -> io::Result<Reply> {
        write_frame(&mut self.stream, line.as_bytes())?;
        let payload = read_frame(&mut self.stream, MAX_FRAME)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection before replying",
            )
        })?;
        decode_reply(&payload)
    }
}
