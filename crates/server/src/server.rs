//! The concurrent server: snapshot-isolated readers, one serialized
//! writer.
//!
//! ```text
//!  session threads (one per TCP connection)
//!    read stmt  ──▶ pin Arc<Snapshot> ──▶ execute_read ──▶ reply
//!    write stmt ──▶ bounded job queue ──▶ writer thread
//!                                          │ drain batch
//!                                          │ execute_write × n
//!                                          │ publish Arc<Snapshot>   (1)
//!                                          └ ack each job            (2)
//! ```
//!
//! Readers never block on the writer and the writer never blocks on
//! readers: a read pins the current snapshot with one `Arc` clone and
//! evaluates entirely against immutable data. The writer applies each
//! statement through the incremental engine, then **publishes before
//! acknowledging** — so once a client sees its write acked, every
//! subsequent read on any connection observes it (read-your-writes,
//! monotonic for everyone). Between a write being applied and its ack,
//! other sessions may or may not see it yet; they can only move forward
//! in time (`:seq` is monotonic).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::Duration;

use balg_core::eval::Limits;
use balg_core::schema::Database;
use balg_sql::prelude::{Catalog, SqlRuntime};

use crate::exec::{execute_read, execute_write, route, snapshot_of, Reply, Route, Snapshot};
use crate::frame::{encode_reply, read_frame, write_frame, MAX_FRAME};

/// Tunables for one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bound of the writer's job queue. A write arriving while the queue
    /// is full is **rejected immediately** with a structured `busy` reply
    /// carrying a retry hint — admission control instead of unbounded
    /// blocking — and counted in `:stats`.
    pub writer_queue: usize,
    /// Maximum write statements applied between two snapshot
    /// publications. Larger batches amortize snapshot construction;
    /// replies are withheld until the batch publishes either way.
    pub write_batch: usize,
    /// Override for the runtime's join-index LRU capacity.
    pub index_capacity: Option<usize>,
    /// Maximum accepted frame payload in bytes.
    pub max_frame: u32,
    /// Evaluation budgets for queries and view maintenance.
    pub limits: Limits,
    /// Serve durably out of this directory: the latest snapshot is
    /// loaded, the WAL replayed, and every committed write fsynced (one
    /// group sync per drained writer batch) **before** it is acked.
    pub data_dir: Option<PathBuf>,
    /// Per-session read timeout: a session idle past this is closed
    /// cleanly (counted in `:stats`). `None` means sessions may idle
    /// forever.
    pub read_timeout: Option<Duration>,
    /// Slow-query log threshold in milliseconds (the binary's
    /// `--slow-ms N`): any statement whose end-to-end service time
    /// (queue wait included) reaches it is logged to stderr and counted
    /// in `balg_server_slow_queries_total`. `None` disables the log.
    pub slow_ms: Option<u64>,
    /// Partition count for intra-query parallel execution (the binary's
    /// `--threads N`). `None` inherits the process-wide default
    /// (`BALG_THREADS` or the detected core count); `Some(1)` pins the
    /// serial paths. Every setting computes identical results — only
    /// scheduling differs.
    pub threads: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            writer_queue: 256,
            write_batch: 64,
            index_capacity: None,
            max_frame: MAX_FRAME,
            limits: Limits::default(),
            data_dir: None,
            read_timeout: None,
            slow_ms: None,
            threads: None,
        }
    }
}

/// Lazily-resolved handles into the process-global metrics registry.
/// The absent-registry answer is deliberately not cached: a registry
/// installed mid-life starts receiving samples at the next request.
struct ServerObs {
    read_duration: balg_obs::Histogram,
    write_duration: balg_obs::Histogram,
    queue_depth: balg_obs::Gauge,
    busy_rejections: balg_obs::Counter,
    idle_closes: balg_obs::Counter,
    slow_queries: balg_obs::Counter,
}

static SERVER_OBS: std::sync::OnceLock<ServerObs> = std::sync::OnceLock::new();

fn server_obs() -> Option<&'static ServerObs> {
    if let Some(obs) = SERVER_OBS.get() {
        return Some(obs);
    }
    let registry = balg_obs::global()?;
    let _ = SERVER_OBS.set(ServerObs {
        read_duration: registry.histogram(
            "balg_server_read_duration_ns",
            "Read-statement service time (snapshot pin to reply), nanoseconds",
        ),
        write_duration: registry.histogram(
            "balg_server_write_duration_ns",
            "Write-statement service time (enqueue to ack, queue wait included), nanoseconds",
        ),
        queue_depth: registry.gauge(
            "balg_server_queue_depth",
            "Write jobs currently enqueued or being applied",
        ),
        busy_rejections: registry.counter(
            "balg_server_busy_rejections_total",
            "Writes rejected at admission because the writer queue was full",
        ),
        idle_closes: registry.counter(
            "balg_server_idle_closes_total",
            "Sessions closed for idling past the read timeout",
        ),
        slow_queries: registry.counter(
            "balg_server_slow_queries_total",
            "Statements that reached the slow-query threshold",
        ),
    });
    SERVER_OBS.get()
}

/// One queued write: the statement and where to send its reply.
struct WriteJob {
    line: String,
    reply: mpsc::Sender<Reply>,
}

/// State shared between the accept loop, session threads, and the writer.
struct Shared {
    snapshot: RwLock<Arc<Snapshot>>,
    /// `None` once shutdown begins — dropping the last sender ends the
    /// writer after it drains the queue.
    writer: Mutex<Option<SyncSender<WriteJob>>>,
    shutdown: AtomicBool,
    max_frame: u32,
    read_timeout: Option<Duration>,
    /// Slow-query log threshold in milliseconds (`None` disables it).
    slow_ms: Option<u64>,
    /// Writes rejected at admission because the writer queue was full.
    busy_rejections: AtomicU64,
    /// Sessions closed for idling past the read timeout.
    idle_closes: AtomicU64,
}

/// A running SQL server. Dropping it shuts it down.
pub struct SqlServer {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
}

impl SqlServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve a
    /// database under the given catalog.
    pub fn spawn<A: ToSocketAddrs>(
        addr: A,
        catalog: Catalog,
        db: Database,
        config: ServerConfig,
    ) -> io::Result<SqlServer> {
        let ServerConfig {
            writer_queue,
            write_batch,
            index_capacity,
            max_frame,
            limits,
            data_dir,
            read_timeout,
            slow_ms,
            threads,
        } = config;
        let mut rt = match &data_dir {
            None => SqlRuntime::with_limits(catalog, db, limits),
            Some(dir) => {
                let mut rt = SqlRuntime::open(&catalog, dir, limits)
                    .map_err(|e| io::Error::other(e.to_string()))?;
                // Seed bases the directory doesn't know yet (a fresh
                // directory with initial data); existing state wins.
                let seed: Vec<(String, balg_core::bag::Bag)> = db
                    .iter()
                    .filter(|(name, _)| rt.runtime().database().get(name).is_none())
                    .map(|(name, bag)| (name.to_string(), bag.clone()))
                    .collect();
                for (name, bag) in seed {
                    rt.backend_mut()
                        .load_base(&name, bag)
                        .map_err(|e| io::Error::other(e.to_string()))?;
                }
                // The writer thread group-commits: one fsync per drained
                // batch, before any of its acks.
                rt.backend_mut().set_sync_on_commit(false);
                rt
            }
        };
        if let Some(capacity) = index_capacity {
            rt.set_index_capacity(capacity);
        }
        if let Some(threads) = threads {
            rt.set_parallel_threads(threads);
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let (sender, receiver) = mpsc::sync_channel(writer_queue.max(1));
        let shared = Arc::new(Shared {
            snapshot: RwLock::new(Arc::new(snapshot_of(&rt, 0))),
            writer: Mutex::new(Some(sender)),
            shutdown: AtomicBool::new(false),
            max_frame,
            read_timeout,
            slow_ms,
            busy_rejections: AtomicU64::new(0),
            idle_closes: AtomicU64::new(0),
        });
        let writer = {
            let shared = Arc::clone(&shared);
            let batch = write_batch.max(1);
            thread::spawn(move || writer_loop(rt, &receiver, &shared, batch))
        };
        let accept = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || accept_loop(&listener, &shared))
        };
        Ok(SqlServer {
            shared,
            addr,
            accept: Some(accept),
            writer: Some(writer),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The sequence number of the currently published snapshot.
    pub fn seq(&self) -> u64 {
        crate::lock::read(&self.shared.snapshot).seq
    }

    /// Stop accepting, drain queued writes, and join the service threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Drop the writer sender: the writer drains what's queued and
        // exits once every transient session clone is gone too.
        *crate::lock::lock(&self.shared.writer) = None;
        // The accept loop blocks in accept(); a self-connection wakes it
        // so it can observe the shutdown flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        if let Some(handle) = self.writer.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for SqlServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(shared);
        // Sessions are detached: they end when their client disconnects
        // (clean EOF) or on a protocol error.
        thread::spawn(move || {
            let _ = session_loop(stream, &shared);
        });
    }
}

fn session_loop(mut stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(shared.read_timeout);
    loop {
        let payload = match read_frame(&mut stream, shared.max_frame) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()),
            // A read timeout means the session idled past the configured
            // limit: close it cleanly (the client sees EOF) and count it.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                shared.idle_closes.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = server_obs() {
                    obs.idle_closes.inc();
                }
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let line = String::from_utf8_lossy(&payload).into_owned();
        let reply = dispatch(&line, shared);
        write_frame(&mut stream, &encode_reply(&reply))?;
    }
}

/// Server-level counter lines appended to `:stats` replies. Only emitted
/// when an incident actually happened, so an idle server's `:stats` stays
/// byte-identical to its serial twin's.
fn server_stats_suffix(shared: &Shared) -> String {
    let busy = shared.busy_rejections.load(Ordering::Relaxed);
    let idle = shared.idle_closes.load(Ordering::Relaxed);
    let mut out = String::new();
    if busy > 0 {
        out.push_str(&format!("\nserver: {busy} writes rejected busy"));
    }
    if idle > 0 {
        out.push_str(&format!("\nserver: {idle} sessions closed idle"));
    }
    out
}

fn dispatch(line: &str, shared: &Shared) -> Reply {
    let kind = route(line);
    let obs = server_obs();
    // One clock read per request, and only when someone is listening —
    // the metrics-off path stays timing-free.
    let start = (obs.is_some() || shared.slow_ms.is_some()).then(std::time::Instant::now);
    let reply = dispatch_routed(line, kind, shared, obs);
    if let Some(start) = start {
        let elapsed = start.elapsed();
        if let Some(obs) = obs {
            let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
            match kind {
                Route::Read => obs.read_duration.record(ns),
                Route::Write => obs.write_duration.record(ns),
            }
        }
        if let Some(threshold) = shared.slow_ms {
            let ms = u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX);
            if ms >= threshold {
                if let Some(obs) = obs {
                    obs.slow_queries.inc();
                }
                eprintln!("[balg-server] slow query ({ms} ms >= {threshold} ms): {line}");
            }
        }
    }
    reply
}

fn dispatch_routed(line: &str, kind: Route, shared: &Shared, obs: Option<&ServerObs>) -> Reply {
    match kind {
        Route::Read => {
            // Pin the published snapshot — one Arc clone, then the read
            // lock is released and evaluation runs unsynchronized.
            let snapshot = Arc::clone(&crate::lock::read(&shared.snapshot));
            execute_read(&snapshot, line)
        }
        Route::Write => {
            let sender = crate::lock::lock(&shared.writer).clone();
            let Some(sender) = sender else {
                return Reply::err("server is shutting down");
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            let job = WriteJob {
                line: line.to_owned(),
                reply: reply_tx,
            };
            // Admission control: a full queue answers *now* with a busy
            // reply instead of blocking the session on the writer.
            match sender.try_send(job) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => {
                    shared.busy_rejections.fetch_add(1, Ordering::Relaxed);
                    if let Some(obs) = obs {
                        obs.busy_rejections.inc();
                    }
                    return Reply::err("busy: writer queue is full, retry shortly");
                }
                Err(TrySendError::Disconnected(_)) => {
                    return Reply::err("server is shutting down");
                }
            }
            if let Some(obs) = obs {
                obs.queue_depth.inc();
            }
            let received = reply_rx.recv();
            if let Some(obs) = obs {
                obs.queue_depth.dec();
            }
            let mut reply = match received {
                Ok(reply) => reply,
                Err(_) => return Reply::err("writer terminated before replying"),
            };
            let is_stats = line
                .trim_start()
                .strip_prefix(':')
                .is_some_and(|rest| rest.split_whitespace().next() == Some("stats"));
            if reply.ok && is_stats {
                reply.text.push_str(&server_stats_suffix(shared));
            }
            reply
        }
    }
}

fn writer_loop(mut rt: SqlRuntime, receiver: &Receiver<WriteJob>, shared: &Shared, batch: usize) {
    let mut seq = 0u64;
    while let Ok(first) = receiver.recv() {
        let mut jobs = vec![first];
        while jobs.len() < batch {
            match receiver.try_recv() {
                Ok(job) => jobs.push(job),
                Err(_) => break,
            }
        }
        let mut replies: Vec<(mpsc::Sender<Reply>, Reply)> = jobs
            .into_iter()
            .map(|job| {
                let reply = execute_write(&mut rt, &job.line);
                seq += 1;
                (job.reply, reply)
            })
            .collect();
        // Group commit: every statement above was logged unsynced; one
        // fsync makes the whole batch durable before any of it is acked
        // (no-op for an in-memory server). If the sync fails, nothing may
        // be acked as committed — every success in the batch becomes an
        // error, since its durability is unknown.
        if let Err(e) = rt.backend_mut().sync_wal() {
            for (_, reply) in &mut replies {
                if reply.ok {
                    *reply = Reply::err(format!("commit not durable: {e}"));
                }
            }
        }
        // Publish BEFORE acking (read-your-writes): a client that has
        // its ack in hand can only ever read this snapshot or a later
        // one. A send can fail only if the session already vanished.
        *crate::lock::write(&shared.snapshot) = Arc::new(snapshot_of(&rt, seq));
        for (sender, reply) in replies {
            let _ = sender.send(reply);
        }
    }
}
