//! The E1–E18 wall-clock workloads shared by the `balg-bench` binary and
//! (in shape) the Criterion `paper` bench.
//!
//! Each group runs the same core computation its Criterion counterpart
//! times, at the same representative size, so the JSON trajectory the
//! binary emits (`BENCH_baseline.json`) is directly comparable with the
//! Criterion output. Keeping the workloads here — in the library — lets
//! tests smoke-run every group without going through the bench harness.

use balg_arith::prelude::{check_on_input, even_formula, DomainKind};
use balg_core::bag::Bag;
use balg_core::derived::{
    average, card_gt, dedup_via_powerset_flat, in_degree_gt_out_degree, int_value,
    parity_even_ordered, subtract_via_powerset,
};
use balg_core::eval::{eval_bag, eval_with_metrics, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::schema::Database;
use balg_core::value::Value;
use balg_games::prelude::{play, star_graphs, ConstraintDuplicator, RandomSpoiler};
use balg_machine::prelude::{compile, flip_machine};
use balg_sql::prelude::{database_from_rows, run as run_sql, Catalog, SqlValue};

use crate::{cycle_graph, workload_bag};

/// One named wall-clock workload: the principal computation of an E-group.
pub struct Group {
    /// Group id, e.g. `e1_occurrence_table`.
    pub name: &'static str,
    /// Runs the workload once.
    pub run: Box<dyn FnMut()>,
}

fn two_tuple_db(n: u64, m: u64) -> Database {
    let mut b = Bag::new();
    b.insert_with_multiplicity(Value::tuple([Value::sym("a"), Value::sym("b")]), n.into());
    b.insert_with_multiplicity(Value::tuple([Value::sym("b"), Value::sym("a")]), m.into());
    Database::new().with("B", b)
}

fn unary_db(n: u64) -> Database {
    Database::new().with("B", Bag::repeated(Value::tuple([Value::sym("a")]), n))
}

/// The full E1–E18 workload set, one [`Group`] per experiment.
pub fn groups() -> Vec<Group> {
    let mut out: Vec<Group> = Vec::new();
    let mut push = |name: &'static str, run: Box<dyn FnMut()>| out.push(Group { name, run });

    {
        let db = two_tuple_db(50, 70);
        let q = Expr::var("B")
            .product(Expr::var("B"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4]);
        push(
            "e1_occurrence_table",
            Box::new(move || {
                eval_bag(&q, &db).unwrap();
            }),
        );
    }
    {
        let db = unary_db(3);
        let dp = Expr::var("B").powerset().destroy();
        let ddpp = Expr::var("B").powerset().powerset().destroy().destroy();
        push(
            "e2_duplicate_explosion",
            Box::new(move || {
                eval_bag(&dp, &db).unwrap();
                eval_bag(&ddpp, &db).unwrap();
            }),
        );
    }
    {
        let bag = Bag::repeated(Value::sym("a"), 12u64);
        push(
            "e3_powerbag_vs_powerset",
            Box::new(move || {
                bag.powerset(1 << 20).unwrap();
                bag.powerbag(1 << 20).unwrap();
            }),
        );
    }
    {
        let db = Database::new().with("B", workload_bag(8, 3));
        let q = dedup_via_powerset_flat(Expr::var("B"));
        push(
            "e4_dedup_redundancy",
            Box::new(move || {
                eval_bag(&q, &db).unwrap();
            }),
        );
    }
    {
        let db = Database::new()
            .with("B1", workload_bag(8, 3))
            .with("B2", workload_bag(5, 5));
        let q = subtract_via_powerset(Expr::var("B1"), Expr::var("B2"));
        push(
            "e5_operator_identities",
            Box::new(move || {
                eval_bag(&q, &db).unwrap();
            }),
        );
    }
    {
        let b = Bag::from_values((1..=8u64).map(|v| int_value(2 * v)));
        let db = Database::new().with("B", b);
        let q = average(Expr::var("B"));
        push(
            "e6_aggregates",
            Box::new(move || {
                eval_bag(&q, &db).unwrap();
            }),
        );
    }
    {
        let db = Database::new().with("G", cycle_graph(64, 5));
        let q = in_degree_gt_out_degree(Expr::var("G"), Value::int(0));
        push(
            "e7_degree_query",
            Box::new(move || {
                eval_bag(&q, &db).unwrap();
            }),
        );
    }
    {
        let make = |size: u64, offset: i64| {
            Bag::from_values((0..size).map(|i| Value::tuple([Value::int(i as i64 + offset)])))
        };
        let db = Database::new()
            .with("R", make(20, 0))
            .with("S", make(18, 1000));
        let q = card_gt(Expr::var("R"), Expr::var("S"));
        push(
            "e8_zero_one_law",
            Box::new(move || {
                eval_bag(&q, &db).unwrap();
            }),
        );
    }
    {
        let r = Bag::from_values((0..32i64).map(|i| Value::tuple([Value::int(i)])));
        let db = Database::new().with("R", r);
        let q = parity_even_ordered(Expr::var("R"));
        push(
            "e9_parity",
            Box::new(move || {
                eval_bag(&q, &db).unwrap();
            }),
        );
    }
    {
        let expr = Expr::var("G")
            .product(Expr::var("G"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4]);
        let db = Database::new()
            .with("G", cycle_graph(16, 2))
            .with("R", workload_bag(4, 1))
            .with("S", workload_bag(4, 1));
        push(
            "e10_translation",
            Box::new(move || {
                balg_relational::translate::check_prop_4_2(&expr, &db).unwrap();
            }),
        );
    }
    {
        let db = Database::new().with("G", cycle_graph(8, 64));
        let q = Expr::var("G").product(Expr::var("G")).project(&[1, 4]);
        push(
            "e11_logspace_counters",
            Box::new(move || {
                let (result, metrics) = eval_with_metrics(&q, &db, Limits::default());
                result.unwrap();
                metrics.max_multiplicity_bits();
            }),
        );
    }
    {
        let db = unary_db(64);
        let q = Expr::var("B").powerset().destroy();
        push(
            "e12_balg2_space",
            Box::new(move || {
                eval_bag(&q, &db).unwrap();
            }),
        );
    }
    {
        let (g, gp) = star_graphs(8);
        push(
            "e13_pebble_game",
            Box::new(move || {
                star_graphs(12);
                let mut spoiler = RandomSpoiler::new(1, 4);
                let mut duplicator = ConstraintDuplicator::new(2);
                play(&g, &gp, 3, &mut spoiler, &mut duplicator);
            }),
        );
    }
    {
        let formula = even_formula();
        push(
            "e14_arith_encoding",
            Box::new(move || {
                check_on_input(&formula, "x", DomainKind::Linear, 8, Limits::default()).unwrap();
            }),
        );
    }
    {
        let db = unary_db(2);
        let tower = balg_machine::encoding::e_tower(Expr::var("B"), 2);
        push(
            "e15_hyperexp_tower",
            Box::new(move || {
                eval_bag(&tower, &db).unwrap();
            }),
        );
    }
    {
        let tm = flip_machine();
        let input = ['0', '1', '0'];
        push(
            "e16_tm_ifp",
            Box::new(move || {
                let compiled = compile(&tm, &input, 2);
                compiled.run(Limits::default()).unwrap();
            }),
        );
    }
    {
        let db = Database::new().with("R", workload_bag(16, 4));
        let q = Expr::var("R").product(Expr::var("R")).project(&[1]);
        push(
            "e17_bag_vs_set_cq",
            Box::new(move || {
                eval_bag(&q, &db).unwrap();
            }),
        );
    }
    {
        let catalog = Catalog::new().with_table("orders", &[("customer", false), ("qty", true)]);
        let rows: Vec<Vec<SqlValue>> = (0..64)
            .map(|i| vec![SqlValue::Str(format!("c{}", i % 8)), SqlValue::Int(i % 10)])
            .collect();
        let db = database_from_rows(&catalog, &[("orders", rows)]).unwrap();
        push(
            "e18_sql_frontend",
            Box::new(move || {
                run_sql("SELECT SUM(qty) FROM orders", &catalog, &db).unwrap();
            }),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_group_runs_once() {
        let mut groups = groups();
        assert_eq!(groups.len(), 18);
        for group in &mut groups {
            (group.run)();
        }
    }
}
