//! Load generator for the concurrent SQL service (`balg-server`).
//!
//! Simulates ≥1k short client sessions — connect, a few requests,
//! disconnect — multiplexed over a small pool of client threads (the
//! bench host has few cores; more threads would measure scheduler
//! contention, not the server). Two workloads:
//!
//! * `s1_reads` — read-only: one-shot SELECTs and pinned-snapshot view
//!   reads, all answered lock-free on session threads;
//! * `s1_mixed` — every 8th session is a writer (INSERT … read …
//!   DELETE … read), exercising the serialized writer queue, snapshot
//!   publication, and read-your-writes, while the rest read.
//!
//! Each request is timed end-to-end at the client (frame write → reply
//! decode); the report is p50/p90/p99 latency plus aggregate
//! throughput — and, for the mixed workload, a separate read/write
//! latency split — in rows the `balg-bench` runner appends to
//! `BENCH_baseline.json` under the `s1_*` family.

use std::net::SocketAddr;
use std::thread;
use std::time::Instant;

use balg_server::prelude::*;
use balg_sql::prelude::{database_from_rows, Catalog, SqlValue};

/// Logical client sessions simulated per workload.
pub const SESSIONS: usize = 1_024;
/// Requests issued per session.
pub const REQUESTS_PER_SESSION: usize = 4;
/// Client threads the sessions are multiplexed over.
pub const CLIENT_THREADS: usize = 16;

/// One measured metric row: `(name, value, unit)` with `unit` either
/// `"ns"` or `"rps"`.
pub type Metric = (&'static str, u128, &'static str);

fn seeded_server() -> SqlServer {
    let catalog = Catalog::new().with_table("orders", &[("customer", false), ("qty", true)]);
    let rows: Vec<Vec<SqlValue>> = (0..64)
        .map(|i| {
            vec![
                SqlValue::Str(format!("c{}", i % 8)),
                SqlValue::Int(1 + i % 7),
            ]
        })
        .collect();
    let db = database_from_rows(&catalog, &[("orders", rows)]).unwrap();
    let server = SqlServer::spawn("127.0.0.1:0", catalog, db, ServerConfig::default()).unwrap();
    let mut setup = Client::connect(server.addr()).unwrap();
    let reply = setup
        .request("CREATE VIEW big AS SELECT customer FROM orders WHERE qty >= 4")
        .unwrap();
    assert!(reply.ok, "view setup failed: {}", reply.text);
    server
}

/// The statements of one simulated session.
fn session_script(workload: &'static str, session: usize) -> Vec<String> {
    let reads = [
        ":rows big".to_owned(),
        "SELECT customer FROM orders WHERE qty >= 4".to_owned(),
        ":seq".to_owned(),
        "SELECT SUM(qty) FROM orders".to_owned(),
    ];
    if workload == "s1_mixed" && session.is_multiple_of(8) {
        // A writer session: insert a session-unique row, read it back,
        // delete it again (always legal — steady-state database), read.
        let customer = format!("w{session}");
        return vec![
            format!("INSERT INTO orders VALUES ('{customer}', 6)"),
            ":rows big".to_owned(),
            format!("DELETE FROM orders VALUES ('{customer}', 6)"),
            ":seq".to_owned(),
        ];
    }
    (0..REQUESTS_PER_SESSION)
        .map(|i| reads[i % reads.len()].clone())
        .collect()
}

/// Run one workload against `addr`: returns every per-request latency
/// in nanoseconds — split by the statement's [`route`] — plus the
/// wall-clock time of the whole run.
fn drive(addr: SocketAddr, workload: &'static str) -> (Vec<u128>, Vec<u128>, u128) {
    let started = Instant::now();
    let handles: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            thread::spawn(move || {
                let mut reads = Vec::new();
                let mut writes = Vec::new();
                let mut session = t;
                while session < SESSIONS {
                    let mut client = Client::connect(addr).expect("connect");
                    for line in session_script(workload, session) {
                        let sent = Instant::now();
                        let reply = client.request(&line).expect("request");
                        let elapsed = sent.elapsed().as_nanos();
                        match route(&line) {
                            Route::Read => reads.push(elapsed),
                            Route::Write => writes.push(elapsed),
                        }
                        assert!(reply.ok, "{workload} request failed: {}", reply.text);
                    }
                    session += CLIENT_THREADS;
                }
                (reads, writes)
            })
        })
        .collect();
    let mut reads = Vec::with_capacity(SESSIONS * REQUESTS_PER_SESSION);
    let mut writes = Vec::new();
    for handle in handles {
        let (r, w) = handle.join().expect("client thread");
        reads.extend(r);
        writes.extend(w);
    }
    (reads, writes, started.elapsed().as_nanos())
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    let ix = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[ix]
}

/// Run both workloads against a freshly seeded server and report the
/// `s1_*` metric rows: p50/p90/p99 over all requests, throughput, and —
/// for the mixed workload — the read/write latency split.
pub fn load_metrics() -> Vec<Metric> {
    let mut out = Vec::new();
    for workload in ["s1_reads", "s1_mixed"] {
        let server = seeded_server();
        let (mut reads, mut writes, wall_ns) = drive(server.addr(), workload);
        server.shutdown();
        assert!(!reads.is_empty(), "no reads measured for {workload}");
        assert_eq!(
            writes.is_empty(),
            workload == "s1_reads",
            "unexpected read/write split for {workload}"
        );
        reads.sort_unstable();
        writes.sort_unstable();
        let mut all = Vec::with_capacity(reads.len() + writes.len());
        all.extend_from_slice(&reads);
        all.extend_from_slice(&writes);
        all.sort_unstable();
        let requests = all.len() as u128;
        let rps = requests.checked_mul(1_000_000_000).expect("fits") / wall_ns.max(1);
        match workload {
            "s1_reads" => out.extend([
                ("s1_reads_p50", percentile(&all, 0.50), "ns"),
                ("s1_reads_p90", percentile(&all, 0.90), "ns"),
                ("s1_reads_p99", percentile(&all, 0.99), "ns"),
                ("s1_reads_throughput", rps, "rps"),
            ]),
            _ => {
                out.extend([
                    ("s1_mixed_p50", percentile(&all, 0.50), "ns"),
                    ("s1_mixed_p90", percentile(&all, 0.90), "ns"),
                    ("s1_mixed_p99", percentile(&all, 0.99), "ns"),
                    ("s1_mixed_throughput", rps, "rps"),
                ]);
                out.extend([
                    ("s1_mixed_read_p50", percentile(&reads, 0.50), "ns"),
                    ("s1_mixed_read_p99", percentile(&reads, 0.99), "ns"),
                    ("s1_mixed_write_p50", percentile(&writes, 0.50), "ns"),
                    ("s1_mixed_write_p99", percentile(&writes, 0.99), "ns"),
                ]);
            }
        }
    }
    out
}
