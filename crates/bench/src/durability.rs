//! r1 durability workloads for the wall-clock runner: WAL group-commit
//! overhead, cold-start replay of a long log, and checkpoint cost.
//!
//! * `r1_commit_wal` — 500 single-tuple commits appended to the WAL with
//!   group-commit batching (sync deferred, one `sync_wal` at the end) —
//!   the write path the server takes per drained writer batch.
//! * `r1_replay` — reopen a prepared directory whose WAL holds 1 000
//!   committed batches plus a maintained view: decode, re-derive, and
//!   verify the recovered state on every run.
//! * `r1_checkpoint` — snapshot a ~2 000-row state with two maintained
//!   views: encode + fsync + rename + log truncation.
//!
//! Directories live under the OS temp dir and are removed when the group
//! list is dropped at process exit.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use balg_core::bag::Bag;
use balg_core::eval::Limits;
use balg_core::expr::Expr;
use balg_core::value::Value;
use balg_incremental::{CheckpointPolicy, DurableRuntime, UpdateBatch};

use crate::paper::Group;

/// A scratch data directory removed on drop (no tempdir crate in tree).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("balg-bench-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(dir)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn pair(a: i64, b: i64) -> Value {
    Value::tuple([Value::int(a), Value::int(b)])
}

/// Insert/delete churn over a small key space: state stays bounded while
/// the log grows one record per step.
fn churn_batch(step: i64) -> UpdateBatch {
    let mut batch = UpdateBatch::new();
    if step % 2 == 0 {
        batch.insert("R", pair(step % 16, step % 7));
    } else {
        batch.delete("R", pair((step - 1) % 16, (step - 1) % 7));
    }
    batch
}

fn seeded_runtime(dir: &std::path::Path, rows: i64) -> DurableRuntime {
    let mut rt = DurableRuntime::open(dir, Limits::default()).expect("open bench data dir");
    rt.set_checkpoint_policy(CheckpointPolicy::manual());
    let mut bag = Bag::new();
    for i in 0..rows {
        bag.insert(pair(i, i % 11));
    }
    rt.load_base("R", bag).expect("load base");
    rt.create_view("rev", Expr::var("R").project(&[2, 1]))
        .expect("create view");
    rt
}

/// The r1 groups for the wall-clock runner.
pub fn durability_groups() -> Vec<Group> {
    let mut out = Vec::new();

    // r1_commit_wal: one runtime, 500 commits per run, group-commit sync.
    {
        let scratch = Arc::new(Scratch::new("commit"));
        let mut rt = seeded_runtime(&scratch.0, 64);
        rt.set_sync_on_commit(false);
        let mut step = 0i64;
        out.push(Group {
            name: "r1_commit_wal",
            run: Box::new(move || {
                let _keep = &scratch;
                for _ in 0..500 {
                    rt.commit(&churn_batch(step)).expect("commit");
                    step += 1;
                }
                rt.sync_wal().expect("group sync");
            }),
        });
    }

    // r1_replay: reopen a directory with 1 000 logged batches. A clean
    // log is replayed verbatim (no truncation), so every run recovers
    // the identical state.
    {
        let scratch = Arc::new(Scratch::new("replay"));
        {
            let mut rt = seeded_runtime(&scratch.0, 64);
            rt.set_sync_on_commit(false);
            for step in 0..1_000 {
                rt.commit(&churn_batch(step)).expect("commit");
            }
            rt.sync_wal().expect("final sync");
        }
        out.push(Group {
            name: "r1_replay",
            run: Box::new(move || {
                let rt = DurableRuntime::open(&scratch.0, Limits::default()).expect("reopen");
                assert_eq!(rt.durability().replayed_batches, 1_000);
                assert!(rt.runtime().view("rev").is_some());
            }),
        });
    }

    // r1_checkpoint: snapshot a fixed-size state. After the first run the
    // WAL is already empty, so each rep times the steady-state cost:
    // snapshot encode + fsync + rename + truncate.
    {
        let scratch = Arc::new(Scratch::new("checkpoint"));
        let mut rt = seeded_runtime(&scratch.0, 2_000);
        rt.create_view(
            "diff",
            Expr::var("R").project(&[2, 1]).subtract(Expr::var("R")),
        )
        .expect("create view");
        for step in 0..32 {
            rt.commit(&churn_batch(step)).expect("commit");
        }
        out.push(Group {
            name: "r1_checkpoint",
            run: Box::new(move || {
                let _keep = &scratch;
                rt.checkpoint().expect("checkpoint");
            }),
        });
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_group_runs_clean() {
        let mut groups = durability_groups();
        assert_eq!(
            groups.iter().map(|g| g.name).collect::<Vec<_>>(),
            ["r1_commit_wal", "r1_replay", "r1_checkpoint"]
        );
        for group in &mut groups {
            (group.run)();
            (group.run)(); // steady-state rep must also succeed
        }
    }
}
