//! Measures the observability layer's cost: the full E1–E18 suite timed
//! once with **no** metrics registry in the process, then again after
//! [`balg_obs::install_global`] — the same binary, the same workloads,
//! the only difference being that every evaluator, cache, and engine
//! hook now finds a registry and records.
//!
//! The pair of rows (`obs_egroups_off` / `obs_egroups_on`) is the
//! acceptance evidence that always-on metrics stay within the overhead
//! budget. The off-phase must run before anything installs a registry —
//! no other workload installs one (the assertion keeps it that way), and
//! the runner calls [`overhead_metrics`] *last* so all the regular
//! timings stay metrics-off and comparable with earlier snapshots.

use std::time::Instant;

use crate::paper::groups;

/// One measured metric row, same shape as the other workload modules.
pub type Metric = (&'static str, u128, &'static str);

/// Median wall time of one full pass over every E-group.
fn suite_median_ns(reps: u32) -> u128 {
    let mut suite = groups();
    for group in &mut suite {
        (group.run)(); // warm-up
    }
    let mut samples = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let start = Instant::now();
        for group in &mut suite {
            (group.run)();
        }
        samples.push(start.elapsed().as_nanos());
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Time the suite metrics-off, install the global registry, time it
/// again metrics-on.
pub fn overhead_metrics(reps: u32) -> Vec<Metric> {
    assert!(
        balg_obs::global().is_none(),
        "a metrics registry was installed before the off-phase ran"
    );
    let off = suite_median_ns(reps);
    balg_obs::install_global(balg_obs::MetricsRegistry::new());
    let on = suite_median_ns(reps);
    vec![("obs_egroups_off", off, "ns"), ("obs_egroups_on", on, "ns")]
}
