//! A minimal JSON reader/writer for `BENCH_baseline.json`.
//!
//! The workspace builds offline (no serde); this module implements just
//! enough of JSON — order-preserving objects, exact integers below 2⁵³,
//! the standard string escapes — for the bench binary to append labelled
//! snapshots into the committed baseline instead of requiring hand-edited
//! JSON.

use std::fmt;

/// A JSON value with order-preserving objects.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (ns medians fit `f64` exactly below 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved across a parse/serialize round
    /// trip so appended snapshots diff cleanly.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Mutable member lookup on an object.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Json> {
        match self {
            Json::Obj(members) => members.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Insert or replace a member (appends new keys at the end). Panics
    /// if `self` is not an object — caller bugs, not data errors.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(members) = self else {
            panic!("Json::set on a non-object");
        };
        match members.iter_mut().find(|(k, _)| k == key) {
            Some((_, slot)) => *slot = value,
            None => members.push((key.to_owned(), value)),
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
}

/// A parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub position: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document (must consume all non-whitespace input).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing input"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            position: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {text}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b'}')?;
            return Ok(Json::Obj(members));
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            self.expect(b']')?;
            return Ok(Json::Arr(items));
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed for bench
                            // labels; reject instead of mis-decoding.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("bad \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Copy the full UTF-8 sequence starting here.
                    let start = self.pos;
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let slice = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .ok_or_else(|| self.error("bad UTF-8"))?;
                    out.push_str(slice);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        self.eat(b'-');
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.eat(b'.') {
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.error("bad number"))
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Json, indent: usize) {
    let pad = |out: &mut String, n: usize| out.push_str(&"  ".repeat(n));
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(v) => {
            // Integers (every ns median) print without a fraction.
            if v.fract() == 0.0 && v.abs() < 9.0e15 {
                out.push_str(&format!("{}", *v as i64));
            } else {
                out.push_str(&format!("{v}"));
            }
        }
        Json::Str(s) => escape_into(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(out, indent + 1);
                write_value(out, item, indent + 1);
                out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
            }
            pad(out, indent);
            out.push(']');
        }
        Json::Obj(members) => {
            if members.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, item)) in members.iter().enumerate() {
                pad(out, indent + 1);
                escape_into(out, key);
                out.push_str(": ");
                write_value(out, item, indent + 1);
                out.push_str(if i + 1 == members.len() { "\n" } else { ",\n" });
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

/// Serialize with two-space indentation and a trailing newline.
pub fn to_string(value: &Json) -> String {
    let mut out = String::new();
    write_value(&mut out, value, 0);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_order() {
        let text = r#"{"b": 1, "a": [true, null, "x\n\"y\""], "n": {"k": 2.5}, "z": -12}"#;
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.get("b"), Some(&Json::Num(1.0)));
        assert_eq!(parsed.get("n").unwrap().get("k"), Some(&Json::Num(2.5)));
        let rendered = to_string(&parsed);
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(parsed, reparsed);
        // Key order survives.
        let Json::Obj(members) = &reparsed else {
            panic!()
        };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "a", "n", "z"]);
    }

    #[test]
    fn integers_render_without_fraction() {
        let rendered = to_string(&Json::Num(285014670.0));
        assert_eq!(rendered.trim(), "285014670");
        let rendered = to_string(&Json::Num(2.92));
        assert_eq!(rendered.trim(), "2.92");
    }

    #[test]
    fn set_and_get_mut() {
        let mut obj = Json::Obj(vec![("a".into(), Json::Num(1.0))]);
        obj.set("a", Json::Num(2.0));
        obj.set("b", Json::Str("x".into()));
        assert_eq!(obj.get("a").unwrap().as_f64(), Some(2.0));
        if let Some(v) = obj.get_mut("b") {
            *v = Json::Null;
        }
        assert_eq!(obj.get("b"), Some(&Json::Null));
    }

    #[test]
    fn parses_the_committed_baseline_shape() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_baseline.json"
        ))
        .unwrap();
        let parsed = parse(&text).unwrap();
        assert!(parsed.get("median_ns").is_some());
        assert!(parsed
            .get("median_ns")
            .unwrap()
            .get("e1_occurrence_table")
            .is_some());
    }

    #[test]
    fn errors_reject_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{} trailing").is_err());
    }
}
