//! Update-stream workloads: E-group-shaped queries maintained under 1 000
//! random single-tuple updates, timed twice — once through the ℤ-bag
//! delta engine (`*_delta`) and once by full re-evaluation after every
//! update (`*_recompute`). The ratio of the two medians is the
//! delta-vs-recompute speedup the `pr4` baseline snapshot records.
//!
//! The update streams are seeded and generated against a simulated base
//! state, so every delete is legal and both runners replay the identical
//! stream. Prototype runtimes are built once; each timed run clones them
//! (cheap — bags are `Arc` slices) and replays the stream.

use balg_core::bag::Bag;
use balg_core::eval::{Evaluator, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::schema::Database;
use balg_core::value::Value;
use balg_incremental::{UpdateBatch, ViewRuntime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::paper::Group;

/// Number of single-tuple updates per stream.
pub const STREAM_LEN: usize = 1_000;

/// One update: `(base name, tuple, delete?)`.
type Update = (&'static str, Value, bool);

/// A fully prepared update workload: prototypes plus the pre-generated
/// stream.
struct Plan {
    name: &'static str,
    expr: Expr,
    runtime: ViewRuntime,
    db: Database,
    updates: Vec<Update>,
}

/// Generate `STREAM_LEN` legal single-tuple updates over the given
/// churn bases: even steps insert a random tuple from `fresh`, odd steps
/// delete a random currently-present occurrence (falling back to an
/// insert when the simulated base is empty).
fn random_stream(
    seed: u64,
    bases: &[(&'static str, &Bag)],
    mut fresh: impl FnMut(&mut StdRng) -> Value,
) -> Vec<Update> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Simulated occurrence lists for O(1) random deletion.
    let mut sim: Vec<(&'static str, Vec<Value>)> = bases
        .iter()
        .map(|(name, bag)| {
            let mut occurrences = Vec::new();
            for (value, mult) in bag.iter() {
                let count = mult.to_u64().expect("bench bags are small");
                for _ in 0..count {
                    occurrences.push(value.clone());
                }
            }
            (*name, occurrences)
        })
        .collect();
    let mut updates = Vec::with_capacity(STREAM_LEN);
    for step in 0..STREAM_LEN {
        let which = rng.gen_range(0..sim.len());
        let (name, occurrences) = &mut sim[which];
        let delete = step % 2 == 1 && !occurrences.is_empty();
        if delete {
            let ix = rng.gen_range(0..occurrences.len());
            let value = occurrences.swap_remove(ix);
            updates.push((*name, value, true));
        } else {
            let value = fresh(&mut rng);
            occurrences.push(value.clone());
            updates.push((*name, value, false));
        }
    }
    updates
}

fn plan(
    name: &'static str,
    seed: u64,
    bases: Vec<(&'static str, Bag)>,
    churn: &[&'static str],
    expr: Expr,
    fresh: impl FnMut(&mut StdRng) -> Value,
) -> Plan {
    let updates = {
        let base_refs: Vec<(&'static str, &Bag)> = bases
            .iter()
            .filter(|(n, _)| churn.contains(n))
            .map(|(n, b)| (*n, b))
            .collect();
        random_stream(seed, &base_refs, fresh)
    };
    let mut db = Database::new();
    let mut runtime = ViewRuntime::with_limits(Limits::default());
    for (base_name, bag) in bases {
        db.insert(base_name, bag.clone());
        runtime
            .load_base(base_name, bag)
            .expect("loading into an empty runtime");
    }
    runtime
        .create_view("v", expr.clone())
        .expect("bench view must evaluate");
    Plan {
        name,
        expr,
        runtime,
        db,
        updates,
    }
}

/// Replay the stream through a cloned runtime — the maintained path.
fn run_delta(plan: &Plan) {
    let mut runtime = plan.runtime.clone();
    for (name, value, delete) in &plan.updates {
        let mut batch = UpdateBatch::new();
        if *delete {
            batch.delete(name, value.clone());
        } else {
            batch.insert(name, value.clone());
        }
        runtime.apply(&batch).expect("bench updates are legal");
    }
    std::hint::black_box(runtime.view("v"));
}

/// Replay the stream against a cloned database, fully re-evaluating the
/// query after every update — the recompute baseline.
fn run_recompute(plan: &Plan) {
    let mut db = plan.db.clone();
    let mut last = Bag::new();
    for (name, value, delete) in &plan.updates {
        let mut bag = db.get(name).expect("known base").clone();
        if *delete {
            bag = bag.subtract(&Bag::singleton(value.clone()));
        } else {
            bag.insert(value.clone());
        }
        db.insert(name, bag);
        let mut evaluator = Evaluator::new(&db, Limits::default());
        last = evaluator
            .eval_bag(&plan.expr)
            .expect("bench query evaluates");
    }
    std::hint::black_box(last);
}

/// Replay a stream prefix through the delta engine and compare the final
/// maintained view against one full re-evaluation over the final database
/// state, plus the engine's own consistency check. (The smoke test uses
/// this — the two bench runners must not time two different
/// computations; the stepwise recompute runner reaches the same final
/// database by construction, since both replay the identical stream. A
/// prefix keeps the debug-build test fast; full-stream correctness is the
/// incremental crate's differential suite's job.)
#[cfg(test)]
fn check_plan(plan: &Plan, prefix: usize) {
    let mut runtime = plan.runtime.clone();
    for (name, value, delete) in &plan.updates[..prefix] {
        let mut batch = UpdateBatch::new();
        if *delete {
            batch.delete(name, value.clone());
        } else {
            batch.insert(name, value.clone());
        }
        runtime.apply(&batch).unwrap();
    }
    assert!(
        runtime.verify_all().unwrap(),
        "{}: delta engine drifted",
        plan.name
    );
    let mut db = plan.db.clone();
    for (name, value, delete) in &plan.updates[..prefix] {
        let mut bag = db.get(name).unwrap().clone();
        if *delete {
            bag = bag.subtract(&Bag::singleton(value.clone()));
        } else {
            bag.insert(value.clone());
        }
        db.insert(name, bag);
    }
    assert_eq!(
        db,
        runtime.database().clone(),
        "{}: recompute runner's base-update arithmetic diverged",
        plan.name
    );
    let mut evaluator = Evaluator::new(&db, Limits::default());
    let recomputed = evaluator.eval_bag(&plan.expr).unwrap();
    assert_eq!(
        &recomputed,
        runtime.view("v").unwrap(),
        "{} diverged",
        plan.name
    );
}

fn binary_bag(n: i64, modulus: i64) -> Bag {
    Bag::from_values((0..n).map(|i| Value::tuple([Value::int(i), Value::int(i % modulus)])))
}

fn unary_bag(n: i64) -> Bag {
    Bag::from_values((0..n).map(|i| Value::tuple([Value::int(i)])))
}

fn plans() -> Vec<Plan> {
    let mut out = Vec::new();
    {
        // σ/π chain over one base: the fully linear fast path.
        let expr = Expr::var("R")
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::lit(Value::int(3))),
            )
            .project(&[1]);
        out.push(plan(
            "u1_filter_map",
            11,
            vec![("R", binary_bag(4096, 17))],
            &["R"],
            expr,
            |rng| {
                Value::tuple([
                    Value::int(rng.gen_range(0..8192)),
                    Value::int(rng.gen_range(0..17)),
                ])
            },
        ));
    }
    {
        // ∪⁺ then a restructuring MAP over two churning bases.
        let expr = Expr::var("R").additive_union(Expr::var("S")).map(
            "x",
            Expr::tuple([Expr::var("x").attr(1), Expr::var("x").attr(1)]),
        );
        out.push(plan(
            "u2_union_tag",
            12,
            vec![("R", unary_bag(2048)), ("S", unary_bag(2048))],
            &["R", "S"],
            expr,
            |rng| Value::tuple([Value::int(rng.gen_range(0..4096))]),
        ));
    }
    {
        // Equi-join over a product: the bilinear δ(A×B) rule. Updates hit
        // the big side; the delta pairs only against the 64-tuple side.
        let expr = Expr::var("R")
            .product(Expr::var("S"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4]);
        out.push(plan(
            "u3_join",
            13,
            vec![("R", binary_bag(4096, 64)), ("S", binary_bag(64, 64))],
            &["R"],
            expr,
            |rng| {
                Value::tuple([
                    Value::int(rng.gen_range(0..8192)),
                    Value::int(rng.gen_range(0..64)),
                ])
            },
        ));
    }
    {
        // Equi-join against a *large* probed side: the per-key index
        // makes the σ(×) delta O(matches) — here ~4 matching rows per
        // update — where the unfused bilinear-then-filter path pays
        // O(|S|) = 1024 pairs plus as many predicate evaluations. The
        // u3/u5 pair brackets the index win: small other side vs large.
        let expr = Expr::var("R")
            .product(Expr::var("S"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4]);
        out.push(plan(
            "u5_indexed_join",
            15,
            vec![("R", binary_bag(2048, 256)), ("S", binary_bag(1024, 256))],
            &["R"],
            expr,
            |rng| {
                Value::tuple([
                    Value::int(rng.gen_range(0..8192)),
                    Value::int(rng.gen_range(0..256)),
                ])
            },
        ));
    }
    {
        // Non-linear control: ε(R − S) re-derives per batch. No order-of-
        // magnitude speedup is claimed here — it documents the fallback
        // cost next to the linear wins.
        let expr = Expr::var("R").subtract(Expr::var("S")).dedup();
        out.push(plan(
            "u4_monus_dedup",
            14,
            vec![("R", unary_bag(1024)), ("S", unary_bag(512))],
            &["R"],
            expr,
            |rng| Value::tuple([Value::int(rng.gen_range(0..2048))]),
        ));
    }
    out
}

/// The update-stream groups for the wall-clock runner: per workload one
/// `*_delta` group (maintained) and one `*_recompute` group (full
/// re-evaluation after every update).
pub fn update_groups() -> Vec<Group> {
    let mut out = Vec::new();
    for p in plans() {
        // `Group.name` is `&'static str` (shared with the E-groups); the
        // handful of derived names are leaked once per process, which
        // keeps adding a workload a one-line change with no panic path.
        let name_delta: &'static str = Box::leak(format!("{}_delta", p.name).into_boxed_str());
        let name_recompute: &'static str =
            Box::leak(format!("{}_recompute", p.name).into_boxed_str());
        let plan_delta = std::sync::Arc::new(p);
        let plan_recompute = plan_delta.clone();
        out.push(Group {
            name: name_delta,
            run: Box::new(move || run_delta(&plan_delta)),
        });
        out.push(Group {
            name: name_recompute,
            run: Box::new(move || run_recompute(&plan_recompute)),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_recompute_agree_on_every_workload() {
        for p in plans() {
            check_plan(&p, 200);
        }
    }

    #[test]
    fn streams_are_deterministic_and_full_length() {
        let a = plans();
        let b = plans();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.updates.len(), STREAM_LEN);
            assert_eq!(x.updates, y.updates, "{} stream not seeded", x.name);
        }
    }
}
