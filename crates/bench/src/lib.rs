//! # balg-bench — benchmark harness
//!
//! The Criterion targets live in `benches/`:
//!
//! * `paper` — one group per experiment E1–E18 (DESIGN.md §2), timing the
//!   core computation each report regenerates;
//! * `micro` — ablations for the design choices called out in
//!   DESIGN.md §5 (counted vs expanded bags, powerbag via binomials vs
//!   the Definition 5.1 renaming, element-index structures, SubBag
//!   predicates over large powersets).
//!
//! The wall-clock runner (`balg-bench` binary) additionally times the
//! [`incremental`] update-stream workloads — maintained views vs full
//! recompute under 1 000 single-tuple updates — the [`durability`] r1
//! workloads (WAL group commit, cold-start replay, checkpoint cost) —
//! and the [`server_load`] concurrent-service workloads (1k+ simulated
//! sessions against `balg-server`, reporting p50/p99 latency and
//! throughput) — and can append a labelled snapshot into
//! `BENCH_baseline.json` via the [`json`] module.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod durability;
pub mod incremental;
pub mod json;
pub mod micro_wall;
pub mod obs_overhead;
pub mod paper;
pub mod server_load;

use balg_core::bag::Bag;
use balg_core::natural::Natural;
use balg_core::value::Value;

/// A flat unary bag `⟦[0], [1], …⟧` with every element at multiplicity
/// `mult` — the standard bench workload.
pub fn workload_bag(distinct: u64, mult: u64) -> Bag {
    let mut bag = Bag::new();
    for i in 0..distinct {
        bag.insert_with_multiplicity(Value::tuple([Value::int(i as i64)]), Natural::from(mult));
    }
    bag
}

/// A binary edge bag forming a cycle over `n` nodes with duplicated
/// edges.
pub fn cycle_graph(n: u64, mult: u64) -> Bag {
    let mut bag = Bag::new();
    for i in 0..n {
        bag.insert_with_multiplicity(
            Value::tuple([Value::int(i as i64), Value::int(((i + 1) % n) as i64)]),
            Natural::from(mult),
        );
    }
    bag
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_have_expected_shape() {
        let bag = workload_bag(10, 3);
        assert_eq!(bag.distinct_count(), 10);
        assert_eq!(bag.cardinality(), Natural::from(30u64));
        let graph = cycle_graph(5, 2);
        assert_eq!(graph.distinct_count(), 5);
    }
}
