//! Wall-clock benchmark runner emitting a JSON perf trajectory.
//!
//! Runs every E1–E18 group workload (the same shapes the Criterion
//! `paper` bench times), reports the median wall-clock per run, and
//! writes machine-readable JSON so successive PRs can diff their perf
//! against the committed `BENCH_baseline.json`.
//!
//! ```text
//! balg-bench [--out FILE] [--reps N] [--label NAME]
//! ```
//!
//! With `--out` the JSON goes to the file (stdout keeps the human table);
//! otherwise JSON goes to stdout. `--reps` controls timed repetitions per
//! group (default 30, after 3 warm-up runs). `--label` tags the run.

use std::io::Write as _;
use std::time::Instant;

use balg_bench::paper::groups;

struct Args {
    out: Option<String>,
    reps: u32,
    label: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: None,
        reps: 30,
        label: "current".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => args.out = Some(it.next().unwrap_or_else(|| die("--out needs a path"))),
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .unwrap_or_else(|| die("--reps needs a positive integer"))
            }
            "--label" => args.label = it.next().unwrap_or_else(|| die("--label needs a value")),
            "--help" | "-h" => {
                println!("usage: balg-bench [--out FILE] [--reps N] [--label NAME]");
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("balg-bench: {msg}");
    std::process::exit(2);
}

fn median_ns(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

/// Escape a string for inclusion in a JSON string literal (the label is
/// caller-controlled; group names are static identifiers).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn format_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn main() {
    let args = parse_args();
    let mut results: Vec<(&'static str, u128)> = Vec::new();
    for group in &mut groups() {
        for _ in 0..3 {
            (group.run)(); // warm-up
        }
        let mut samples = Vec::with_capacity(args.reps as usize);
        for _ in 0..args.reps {
            let start = Instant::now();
            (group.run)();
            samples.push(start.elapsed().as_nanos());
        }
        let median = median_ns(&mut samples);
        eprintln!("{:<28} median {:>12}", group.name, format_ns(median));
        results.push((group.name, median));
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"label\": \"{}\",\n", escape_json(&args.label)));
    json.push_str(&format!("  \"reps\": {},\n", args.reps));
    json.push_str("  \"median_ns\": {\n");
    for (i, (name, median)) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() { "" } else { "," };
        json.push_str(&format!("    \"{name}\": {median}{comma}\n"));
    }
    json.push_str("  }\n}\n");

    match &args.out {
        Some(path) => {
            let mut file = std::fs::File::create(path)
                .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
            file.write_all(json.as_bytes())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
