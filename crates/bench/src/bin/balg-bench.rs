//! Wall-clock benchmark runner emitting a JSON perf trajectory.
//!
//! Runs every E1–E18 group workload (the same shapes the Criterion
//! `paper` bench times), the u1–u4 incremental update-stream workloads
//! (`*_delta` maintained vs `*_recompute` full re-evaluation), the r1
//! durability workloads (WAL group commit, cold-start replay,
//! checkpoint), the s1 server load workloads (1k+ simulated sessions
//! against a live `balg-server`, reporting p50/p90/p99 request latency,
//! a read/write latency split for the mixed workload, and throughput),
//! and the observability overhead pair (`obs_egroups_off`/`_on` — the
//! E-group suite timed before and after installing the global metrics
//! registry), then writes machine-readable JSON so successive PRs can
//! diff their perf against the committed `BENCH_baseline.json`.
//!
//! ```text
//! balg-bench [--out FILE] [--reps N] [--label NAME] [--append [FILE]]
//! ```
//!
//! With `--out` the JSON goes to the file (stdout keeps the human table);
//! otherwise JSON goes to stdout. `--reps` controls timed repetitions per
//! group (default 30, after 3 warm-up runs). `--label` tags the run.
//! `--append` merges the run as a named snapshot into the baseline file
//! (default `BENCH_baseline.json`) instead of requiring hand-edited JSON:
//! it sets `reps.<label>` and `median_ns.<group>.<label>_ns`, and for
//! every `*_delta` group with a `*_recompute` sibling also records
//! `<label>_speedup_vs_recompute`.

use std::io::Write as _;
use std::time::Instant;

use balg_bench::durability::durability_groups;
use balg_bench::incremental::update_groups;
use balg_bench::json::{self, Json};
use balg_bench::micro_wall::micro_groups;
use balg_bench::obs_overhead::overhead_metrics;
use balg_bench::paper::groups;
use balg_bench::server_load::load_metrics;

/// One result row: name, value, unit (`"ns"` medians, `"rps"`
/// throughput).
type Row = (String, u128, &'static str);

struct Args {
    out: Option<String>,
    reps: u32,
    label: String,
    append: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: None,
        reps: 30,
        label: "current".to_owned(),
        append: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => args.out = Some(it.next().unwrap_or_else(|| die("--out needs a path"))),
            "--reps" => {
                args.reps = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .unwrap_or_else(|| die("--reps needs a positive integer"));
            }
            "--label" => args.label = it.next().unwrap_or_else(|| die("--label needs a value")),
            "--append" => {
                // Optional file operand; defaults to the committed baseline.
                args.append = Some(match it.peek() {
                    Some(next) if !next.starts_with("--") => it.next().expect("peeked"),
                    _ => "BENCH_baseline.json".to_owned(),
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: balg-bench [--out FILE] [--reps N] [--label NAME] [--append [FILE]]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other}")),
        }
    }
    args
}

fn die(msg: &str) -> ! {
    eprintln!("balg-bench: {msg}");
    std::process::exit(2);
}

fn median_ns(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

fn format_ns(ns: u128) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Merge this run into the baseline file as a labelled snapshot.
fn append_snapshot(path: &str, label: &str, reps: u32, results: &[Row]) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| die(&format!("cannot read baseline {path}: {e}")));
    let mut doc =
        json::parse(&text).unwrap_or_else(|e| die(&format!("baseline {path} is not JSON: {e}")));
    if doc.get("reps").is_none() {
        doc.set("reps", Json::Obj(Vec::new()));
    }
    doc.get_mut("reps")
        .expect("just ensured")
        .set(label, Json::Num(reps as f64));
    if doc.get("median_ns").is_none() {
        doc.set("median_ns", Json::Obj(Vec::new()));
    }
    let medians = doc.get_mut("median_ns").expect("just ensured");
    for (name, value, unit) in results {
        if medians.get(name).is_none() {
            medians.set(name, Json::Obj(Vec::new()));
        }
        medians
            .get_mut(name)
            .expect("just ensured")
            .set(&format!("{label}_{unit}"), Json::Num(*value as f64));
    }
    // Delta-vs-recompute speedups for the update workloads.
    for (name, median, _) in results {
        let Some(base) = name.strip_suffix("_delta") else {
            continue;
        };
        let sibling = format!("{base}_recompute");
        let Some((_, recompute, _)) = results.iter().find(|(n, _, _)| *n == sibling) else {
            continue;
        };
        if *median > 0 {
            let speedup = (*recompute as f64 / *median as f64 * 100.0).round() / 100.0;
            medians
                .get_mut(name)
                .expect("written above")
                .set(&format!("{label}_speedup_vs_recompute"), Json::Num(speedup));
        }
    }
    std::fs::write(path, json::to_string(&doc))
        .unwrap_or_else(|e| die(&format!("cannot write baseline {path}: {e}")));
    eprintln!("appended snapshot {label} to {path}");
}

fn main() {
    let args = parse_args();
    let mut results: Vec<Row> = Vec::new();
    let mut all_groups = groups();
    all_groups.extend(micro_groups());
    all_groups.extend(update_groups());
    all_groups.extend(durability_groups());
    for group in &mut all_groups {
        for _ in 0..3 {
            (group.run)(); // warm-up
        }
        let mut samples = Vec::with_capacity(args.reps as usize);
        for _ in 0..args.reps {
            let start = Instant::now();
            (group.run)();
            samples.push(start.elapsed().as_nanos());
        }
        let median = median_ns(&mut samples);
        eprintln!("{:<28} median {:>12}", group.name, format_ns(median));
        results.push((group.name.to_owned(), median, "ns"));
    }

    // The server load workloads measure a distribution over thousands of
    // requests in one run — they report percentiles and throughput
    // directly instead of a median over reps.
    for (name, value, unit) in load_metrics() {
        let rendered = match unit {
            "rps" => format!("{value} req/s"),
            _ => format_ns(value),
        };
        eprintln!("{name:<28}        {rendered:>12}");
        results.push((name.to_owned(), value, unit));
    }

    // Last, so every timing above ran metrics-off (comparable with prior
    // snapshots): the overhead pair installs the process-global registry
    // for its on-phase.
    for (name, value, unit) in overhead_metrics(args.reps) {
        eprintln!("{:<28} median {:>12}", name, format_ns(value));
        results.push((name.to_owned(), value, unit));
    }

    let mut medians = Vec::new();
    for (name, value, unit) in &results {
        let key = match *unit {
            "ns" => name.clone(),
            unit => format!("{name}_{unit}"),
        };
        medians.push((key, Json::Num(*value as f64)));
    }
    let doc = Json::Obj(vec![
        ("label".to_owned(), Json::Str(args.label.clone())),
        ("reps".to_owned(), Json::Num(args.reps as f64)),
        ("median_ns".to_owned(), Json::Obj(medians)),
    ]);
    let rendered = json::to_string(&doc);

    match &args.out {
        Some(path) => {
            let mut file = std::fs::File::create(path)
                .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
            file.write_all(rendered.as_bytes())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            eprintln!("wrote {path}");
        }
        None => print!("{rendered}"),
    }
    if let Some(path) = &args.append {
        append_snapshot(path, &args.label, args.reps, &results);
    }
}
