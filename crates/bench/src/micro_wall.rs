//! Wall-clock groups for the tracked micro hot spots, so their
//! trajectory lands in `BENCH_baseline.json` next to the E-groups.
//!
//! `micro_subbag_over_powerset` is the e4/e5 residual hot spot PR 4
//! committed a Criterion baseline for: `σ_{s ⊑ C}(P)` over the 65 536
//! subbags of `workload_bag(8, 3)`. The default group runs the memoized
//! membership tester; the `_scan` twin forces the per-element path
//! (re-deriving the reference and merge-walking it per subbag) — which
//! **is** the PR-4 algorithm, so the pair is the indexed-vs-baseline
//! ratio inside one snapshot.

use balg_core::eval::{Evaluator, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::schema::Database;
use std::hint::black_box;

use crate::paper::Group;
use crate::workload_bag;

/// The micro wall-clock groups (memoized vs scan-forced subbag sweep).
pub fn micro_groups() -> Vec<Group> {
    // workload_bag(8, 3): Π(mᵢ+1) = 4⁸ = 65 536 distinct subbags; the
    // probe sits mid-lattice so admits/rejects both occur.
    let base = workload_bag(8, 3);
    let powerset = base.powerset(1 << 20).expect("4^8 fits the budget");
    assert_eq!(powerset.distinct_count(), 65_536);
    let probe = workload_bag(8, 2);
    let db = Database::new().with("P", powerset).with("C", probe);
    let q = Expr::var("P").select("s", Pred::SubBag(Expr::var("s"), Expr::var("C")));
    let (db_scan, q_scan) = (db.clone(), q.clone());
    vec![
        Group {
            name: "micro_subbag_over_powerset",
            run: Box::new(move || {
                let mut ev = Evaluator::new(&db, Limits::default());
                black_box(ev.eval_bag(&q).expect("in budget"));
            }),
        },
        Group {
            name: "micro_subbag_over_powerset_scan",
            run: Box::new(move || {
                let mut ev = Evaluator::new(&db_scan, Limits::default());
                ev.set_indexing(false);
                black_box(ev.eval_bag(&q_scan).expect("in budget"));
            }),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_groups_run_and_group_count_is_stable() {
        let mut groups = micro_groups();
        assert_eq!(groups.len(), 2);
        for group in &mut groups {
            (group.run)();
        }
    }
}
