//! Ablation benches for the design choices of DESIGN.md §5.
//!
//! * `counted_vs_expanded` — the counted sorted-slice bag representation
//!   vs a naive expanded vector (the standard-encoding representation the
//!   paper's complexity measure charges for);
//! * `powerbag_binomial` — the `Π C(mᵢ, jᵢ)` multiplicity computation vs
//!   the literal Definition 5.1 renaming `H⁻¹(P(H(B)))`;
//! * `btree_vs_sorted_vec` — the ablation that motivated moving `Bag`
//!   from a `BTreeMap` to the sorted slice (membership and bulk build);
//! * `builder_vs_insert` — `BagBuilder` batched construction vs repeated
//!   out-of-order `Bag::insert` (the memmove-per-insert worst case).

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeSet;
use std::hint::black_box;

use balg_bench::workload_bag;
use balg_core::bag::{Bag, BagBuilder};
use balg_core::eval::eval_bag;
use balg_core::expr::{Expr, Pred};
use balg_core::natural::Natural;
use balg_core::schema::Database;
use balg_core::value::Value;

/// Naive expanded-representation additive union: concatenation of
/// occurrence lists, then sorting (what the standard encoding implies).
fn expanded_union(left: &[Value], right: &[Value]) -> Vec<Value> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend_from_slice(left);
    out.extend_from_slice(right);
    out.sort();
    out
}

fn expand(bag: &Bag) -> Vec<Value> {
    let mut out = Vec::new();
    for (value, mult) in bag.iter() {
        let count = mult.to_u64().expect("bench bags are small");
        for _ in 0..count {
            out.push(value.clone());
        }
    }
    out
}

fn counted_vs_expanded(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_counted_vs_expanded");
    // High-multiplicity bags: where the counted form wins asymptotically.
    let b1 = workload_bag(64, 100);
    let b2 = workload_bag(64, 150);
    group.bench_function("counted_additive_union_64x100", |bench| {
        bench.iter(|| black_box(&b1).additive_union(black_box(&b2)));
    });
    let e1 = expand(&b1);
    let e2 = expand(&b2);
    group.bench_function("expanded_additive_union_64x100", |bench| {
        bench.iter(|| expanded_union(black_box(&e1), black_box(&e2)));
    });
    group.bench_function("counted_intersect_64x100", |bench| {
        bench.iter(|| black_box(&b1).intersect(black_box(&b2)));
    });
    group.finish();
}

/// The literal Definition 5.1 powerbag: rename each occurrence apart
/// (`H`), take the powerset of the now-duplicate-free bag, then strip the
/// renaming (`H⁻¹`).
fn powerbag_by_renaming(bag: &Bag) -> Bag {
    let mut tagged = Vec::new();
    for (value, mult) in bag.iter() {
        let count = mult.to_u64().expect("bench bags are small");
        for occurrence in 0..count {
            tagged.push((value.clone(), occurrence));
        }
    }
    let n = tagged.len();
    assert!(n < 20, "renaming powerbag is 2^n — keep it small");
    let mut out = Bag::new();
    for mask in 0u64..(1 << n) {
        let subset = tagged
            .iter()
            .enumerate()
            .filter(|(i, _)| mask >> i & 1 == 1)
            .map(|(_, (value, _))| value.clone());
        out.insert_with_multiplicity(Value::Bag(Bag::from_values(subset)), Natural::one());
    }
    out
}

fn powerbag_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_powerbag_binomial");
    let bag = Bag::from_counted([
        (Value::sym("a"), Natural::from(6u64)),
        (Value::sym("b"), Natural::from(6u64)),
    ]);
    // Cross-validate once before timing.
    assert_eq!(bag.powerbag(1 << 20).unwrap(), powerbag_by_renaming(&bag));
    group.bench_function("binomial_weights_12_occurrences", |bench| {
        bench.iter(|| black_box(&bag).powerbag(1 << 20).unwrap());
    });
    group.bench_function("definition_5_1_renaming_12_occurrences", |bench| {
        bench.iter(|| powerbag_by_renaming(black_box(&bag)));
    });
    group.finish();
}

fn btree_vs_sorted_vec(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_btree_vs_sorted_vec");
    let values: Vec<Value> = (0..512i64).map(|i| Value::tuple([Value::int(i)])).collect();
    let btree: BTreeSet<Value> = values.iter().cloned().collect();
    let sorted: Vec<Value> = {
        let mut v = values.clone();
        v.sort();
        v
    };
    let probe = Value::tuple([Value::int(311)]);
    group.bench_function("btree_membership_512", |bench| {
        bench.iter(|| black_box(&btree).contains(black_box(&probe)));
    });
    group.bench_function("sorted_vec_membership_512", |bench| {
        bench.iter(|| black_box(&sorted).binary_search(black_box(&probe)).is_ok());
    });
    group.bench_function("btree_build_512", |bench| {
        bench.iter(|| values.iter().cloned().collect::<BTreeSet<Value>>());
    });
    group.bench_function("sorted_vec_build_512", |bench| {
        bench.iter(|| {
            let mut v = values.clone();
            v.sort();
            v
        });
    });
    group.finish();
}

fn builder_vs_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_builder_vs_insert");
    // Descending keys: the worst case for sorted-vec insertion, the case
    // BagBuilder's overflow buffer exists for.
    let values: Vec<Value> = (0..512i64).rev().map(Value::int).collect();
    group.bench_function("bag_insert_descending_512", |bench| {
        bench.iter(|| {
            let mut bag = Bag::new();
            for v in black_box(&values) {
                bag.insert(v.clone());
            }
            bag
        });
    });
    group.bench_function("builder_push_descending_512", |bench| {
        bench.iter(|| {
            let mut builder = BagBuilder::new();
            for v in black_box(&values) {
                builder.push_one(v.clone());
            }
            builder.build()
        });
    });
    group.finish();
}

/// The e4/e5 residual hot spot (ROADMAP): `SubBag` predicate evaluation
/// over a large powerset. Tracks both the raw `Bag::is_subbag_of` sweep
/// and the same work routed through the evaluator's `σ_{s ⊑ C}` — the
/// number any future indexed-subbag-test or memoized-predicate
/// optimization must beat.
fn subbag_over_powerset(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_subbag_over_powerset");
    // workload_bag(8, 3): Π(mᵢ+1) = 4⁸ = 65 536 distinct subbags.
    let base = workload_bag(8, 3);
    let powerset = base.powerset(1 << 20).unwrap();
    assert_eq!(powerset.distinct_count(), 65_536);
    // A mid-lattice probe: subbags of it exist at every size.
    let probe = workload_bag(8, 2);
    group.bench_function("is_subbag_of_sweep_65536", |bench| {
        bench.iter(|| {
            black_box(&powerset)
                .iter()
                .filter(|(sub, _)| sub.as_bag().unwrap().is_subbag_of(black_box(&probe)))
                .count()
        });
    });
    // The memoized membership tester over the same sweep — the structure
    // the evaluator's `σ_{s ⊑ C}` stage now probes per element.
    let tester = balg_core::index::SubBagTester::new(&probe);
    let walked = powerset
        .iter()
        .filter(|(sub, _)| sub.as_bag().unwrap().is_subbag_of(&probe))
        .count();
    let tested = powerset
        .iter()
        .filter(|(sub, _)| tester.admits(sub.as_bag().unwrap()))
        .count();
    assert_eq!(walked, tested, "tester must match the merge walk");
    group.bench_function("subbag_tester_sweep_65536", |bench| {
        bench.iter(|| {
            black_box(&powerset)
                .iter()
                .filter(|(sub, _)| black_box(&tester).admits(sub.as_bag().unwrap()))
                .count()
        });
    });
    let db = Database::new().with("P", powerset).with("C", probe);
    let q = Expr::var("P").select("s", Pred::SubBag(Expr::var("s"), Expr::var("C")));
    group.bench_function("evaluator_sigma_subbag_65536", |bench| {
        bench.iter(|| eval_bag(black_box(&q), black_box(&db)).unwrap());
    });
    group.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20);
    targets = counted_vs_expanded, powerbag_binomial, btree_vs_sorted_vec, builder_vs_insert,
        subbag_over_powerset
);
criterion_main!(micro);
