//! One Criterion group per paper experiment (E1–E18).
//!
//! Each group times the core computation its report regenerates, at a
//! representative size. The *correctness* of the regenerated numbers is
//! asserted by the `balg-complexity` test suite; these benches track the
//! cost profile (e.g. the powerset explosions of Proposition 3.2 dominate
//! everything else, exactly as the paper's complexity bounds predict).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use balg_arith::prelude::{check_on_input, even_formula, DomainKind};
use balg_bench::{cycle_graph, workload_bag};
use balg_core::bag::Bag;
use balg_core::derived::{
    average, card_gt, in_degree_gt_out_degree, int_value, parity_even_ordered,
};
use balg_core::eval::{eval_bag, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::schema::Database;
use balg_core::value::Value;
use balg_games::prelude::*;
use balg_machine::prelude::{compile, flip_machine};
use balg_sql::prelude::{database_from_rows, run as run_sql, Catalog, SqlValue};

fn two_tuple_db(n: u64, m: u64) -> Database {
    let mut b = Bag::new();
    b.insert_with_multiplicity(Value::tuple([Value::sym("a"), Value::sym("b")]), n.into());
    b.insert_with_multiplicity(Value::tuple([Value::sym("b"), Value::sym("a")]), m.into());
    Database::new().with("B", b)
}

fn unary_db(n: u64) -> Database {
    Database::new().with("B", Bag::repeated(Value::tuple([Value::sym("a")]), n))
}

fn e1(c: &mut Criterion) {
    let db = two_tuple_db(50, 70);
    let q = Expr::var("B")
        .product(Expr::var("B"))
        .select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        )
        .project(&[1, 4]);
    c.bench_function("e1_occurrence_table/q_of_b_50x70", |bench| {
        bench.iter(|| eval_bag(black_box(&q), black_box(&db)).unwrap());
    });
}

fn e2(c: &mut Criterion) {
    let db = unary_db(3);
    let dp = Expr::var("B").powerset().destroy();
    let ddpp = Expr::var("B").powerset().powerset().destroy().destroy();
    c.bench_function("e2_duplicate_explosion/delta_p", |bench| {
        bench.iter(|| eval_bag(black_box(&dp), black_box(&db)).unwrap());
    });
    c.bench_function("e2_duplicate_explosion/delta2_p2", |bench| {
        bench.iter(|| eval_bag(black_box(&ddpp), black_box(&db)).unwrap());
    });
}

fn e3(c: &mut Criterion) {
    let bag = Bag::repeated(Value::sym("a"), 12u64);
    c.bench_function("e3_powerbag_vs_powerset/powerset_n12", |bench| {
        bench.iter(|| black_box(&bag).powerset(1 << 20).unwrap());
    });
    c.bench_function("e3_powerbag_vs_powerset/powerbag_n12", |bench| {
        bench.iter(|| black_box(&bag).powerbag(1 << 20).unwrap());
    });
}

fn e4(c: &mut Criterion) {
    let db = Database::new().with("B", workload_bag(8, 3));
    let q = balg_core::derived::dedup_via_powerset_flat(Expr::var("B"));
    c.bench_function("e4_dedup_redundancy/flat_identity", |bench| {
        bench.iter(|| eval_bag(black_box(&q), black_box(&db)).unwrap());
    });
}

fn e5(c: &mut Criterion) {
    let db = Database::new()
        .with("B1", workload_bag(8, 3))
        .with("B2", workload_bag(5, 5));
    let q = balg_core::derived::subtract_via_powerset(Expr::var("B1"), Expr::var("B2"));
    c.bench_function("e5_operator_identities/subtract_via_powerset", |bench| {
        bench.iter(|| eval_bag(black_box(&q), black_box(&db)).unwrap());
    });
}

fn e6(c: &mut Criterion) {
    let b = Bag::from_values((1..=8u64).map(|v| int_value(2 * v)));
    let db = Database::new().with("B", b);
    let q = average(Expr::var("B"));
    c.bench_function("e6_aggregates/average_of_8", |bench| {
        bench.iter(|| eval_bag(black_box(&q), black_box(&db)).unwrap());
    });
}

fn e7(c: &mut Criterion) {
    let db = Database::new().with("G", cycle_graph(64, 5));
    let q = in_degree_gt_out_degree(Expr::var("G"), Value::int(0));
    c.bench_function("e7_degree_query/cycle64", |bench| {
        bench.iter(|| eval_bag(black_box(&q), black_box(&db)).unwrap());
    });
}

fn e8(c: &mut Criterion) {
    let make = |size: u64, offset: i64| {
        Bag::from_values((0..size).map(|i| Value::tuple([Value::int(i as i64 + offset)])))
    };
    let db = Database::new()
        .with("R", make(20, 0))
        .with("S", make(18, 1000));
    let q = card_gt(Expr::var("R"), Expr::var("S"));
    c.bench_function("e8_zero_one_law/card_gt_20_18", |bench| {
        bench.iter(|| eval_bag(black_box(&q), black_box(&db)).unwrap());
    });
}

fn e9(c: &mut Criterion) {
    let r = Bag::from_values((0..32i64).map(|i| Value::tuple([Value::int(i)])));
    let db = Database::new().with("R", r);
    let q = parity_even_ordered(Expr::var("R"));
    c.bench_function("e9_parity/ordered_parity_n32", |bench| {
        bench.iter(|| eval_bag(black_box(&q), black_box(&db)).unwrap());
    });
}

fn e10(c: &mut Criterion) {
    let expr = Expr::var("G")
        .product(Expr::var("G"))
        .select(
            "x",
            Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
        )
        .project(&[1, 4]);
    let db = Database::new()
        .with("G", cycle_graph(16, 2))
        .with("R", workload_bag(4, 1))
        .with("S", workload_bag(4, 1));
    c.bench_function("e10_translation/check_prop_4_2", |bench| {
        bench.iter(|| {
            balg_relational::translate::check_prop_4_2(black_box(&expr), black_box(&db)).unwrap()
        });
    });
}

fn e11(c: &mut Criterion) {
    let db = Database::new().with("G", cycle_graph(8, 64));
    let q = Expr::var("G").product(Expr::var("G")).project(&[1, 4]);
    c.bench_function("e11_logspace_counters/product_mult_growth", |bench| {
        bench.iter(|| {
            let (result, metrics) = balg_core::eval::eval_with_metrics(
                black_box(&q),
                black_box(&db),
                Limits::default(),
            );
            result.unwrap();
            metrics.max_multiplicity_bits()
        });
    });
}

fn e12(c: &mut Criterion) {
    let db = unary_db(64);
    let q = Expr::var("B").powerset().destroy();
    c.bench_function("e12_balg2_space/delta_p_n64", |bench| {
        bench.iter(|| eval_bag(black_box(&q), black_box(&db)).unwrap());
    });
}

fn e13(c: &mut Criterion) {
    c.bench_function("e13_pebble_game/construct_n12", |bench| {
        bench.iter(|| star_graphs(black_box(12)));
    });
    let (g, gp) = star_graphs(8);
    c.bench_function("e13_pebble_game/play_n8_k3", |bench| {
        bench.iter_batched(
            || (RandomSpoiler::new(1, 4), ConstraintDuplicator::new(2)),
            |(mut spoiler, mut duplicator)| {
                play(
                    black_box(&g),
                    black_box(&gp),
                    3,
                    &mut spoiler,
                    &mut duplicator,
                )
            },
            BatchSize::SmallInput,
        );
    });
}

fn e14(c: &mut Criterion) {
    let formula = even_formula();
    c.bench_function("e14_arith_encoding/even_n8_linear", |bench| {
        bench.iter(|| {
            check_on_input(
                black_box(&formula),
                "x",
                DomainKind::Linear,
                8,
                Limits::default(),
            )
            .unwrap()
        });
    });
}

fn e15(c: &mut Criterion) {
    let db = unary_db(2);
    let tower = balg_machine::encoding::e_tower(Expr::var("B"), 2);
    c.bench_function("e15_hyperexp_tower/e2_of_b2", |bench| {
        bench.iter(|| eval_bag(black_box(&tower), black_box(&db)).unwrap());
    });
}

fn e16(c: &mut Criterion) {
    let tm = flip_machine();
    let input = ['0', '1', '0'];
    c.bench_function("e16_tm_ifp/flip_compile_and_run", |bench| {
        bench.iter(|| {
            let compiled = compile(black_box(&tm), black_box(&input), 2);
            compiled.run(Limits::default()).unwrap().accepted
        });
    });
}

fn e17(c: &mut Criterion) {
    let db = Database::new().with("R", workload_bag(16, 4));
    let q = Expr::var("R").product(Expr::var("R")).project(&[1]);
    c.bench_function("e17_bag_vs_set_cq/pi1_rxr", |bench| {
        bench.iter(|| eval_bag(black_box(&q), black_box(&db)).unwrap());
    });
}

fn e18(c: &mut Criterion) {
    let catalog = Catalog::new().with_table("orders", &[("customer", false), ("qty", true)]);
    let rows: Vec<Vec<SqlValue>> = (0..64)
        .map(|i| vec![SqlValue::Str(format!("c{}", i % 8)), SqlValue::Int(i % 10)])
        .collect();
    let db = database_from_rows(&catalog, &[("orders", rows)]).unwrap();
    c.bench_function("e18_sql_frontend/sum_qty_64_rows", |bench| {
        bench.iter(|| {
            run_sql(
                "SELECT SUM(qty) FROM orders",
                black_box(&catalog),
                black_box(&db),
            )
            .unwrap()
        });
    });
}

criterion_group!(
    name = paper;
    config = Criterion::default().sample_size(20);
    targets = e1, e2, e3, e4, e5, e6, e7, e8, e9, e10, e11, e12, e13, e14, e15, e16, e17, e18
);
criterion_main!(paper);
