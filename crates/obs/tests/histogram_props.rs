//! Property tests for the histogram/registry primitives (PR-9 satellite):
//! bucketed quantiles stay within one bucket of the exact same-rank
//! quantile on random samples, and concurrent recording conserves the
//! total count and sum.

use balg_obs::{bucket_index, bucket_upper, Histogram, MetricsRegistry};
use proptest::prelude::*;

/// The exact sample of rank `max(1, ceil(q·n))` — the same rank rule the
/// histogram reconstruction uses.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len() as u64;
    let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
    sorted[(rank - 1) as usize]
}

proptest! {
    #[test]
    fn bucketed_quantile_within_one_bucket_of_exact(
        samples in proptest::collection::vec(0u64..=10_000_000, 1..200),
        qi in 0usize..5,
    ) {
        let q = [0.5, 0.9, 0.95, 0.99, 1.0][qi];
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, q);
        let approx = h.quantile(q);
        // The reconstruction returns the upper bound of the exact
        // sample's bucket: never below the exact value, never more than
        // one bucket away.
        prop_assert!(approx >= exact, "approx {approx} < exact {exact}");
        let (be, ba) = (bucket_index(exact), bucket_index(approx));
        prop_assert!(
            ba.abs_diff(be) <= 1,
            "bucket drift: exact {exact} (bucket {be}) vs approx {approx} (bucket {ba})"
        );
        prop_assert!(approx <= bucket_upper(be.saturating_add(1)));
    }

    /// Hostile quantile arguments never panic and always land inside the
    /// recorded population: `NaN` reads as the minimum, anything outside
    /// `[0, 1]` (including ±∞) clamps to the nearest end.
    #[test]
    fn quantile_is_total_over_hostile_arguments(
        samples in proptest::collection::vec(0u64..=10_000_000, 1..100),
        q in prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            (-1000i32..1000).prop_map(|k| f64::from(k) / 100.0),
        ],
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let got = h.quantile(q);
        let lo = h.quantile(0.0);
        let hi = h.quantile(1.0);
        prop_assert!(got >= lo && got <= hi, "quantile({q}) = {got} outside [{lo}, {hi}]");
        if q.is_nan() || q <= 0.0 {
            prop_assert_eq!(got, lo);
        }
        if q >= 1.0 {
            prop_assert_eq!(got, hi);
        }
    }

    #[test]
    fn count_and_sum_track_samples(
        samples in proptest::collection::vec(0u64..=1_000_000, 0..100),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.buckets().iter().sum::<u64>(), samples.len() as u64);
    }
}

/// The empty histogram answers 0 for every quantile, hostile or not —
/// the documented sentinel, reachable before the first sample lands.
#[test]
fn empty_histogram_quantiles_are_zero() {
    let h = Histogram::new();
    for q in [
        f64::NAN,
        f64::NEG_INFINITY,
        -1.0,
        0.0,
        0.5,
        1.0,
        2.0,
        f64::INFINITY,
    ] {
        assert_eq!(h.quantile(q), 0, "quantile({q}) on empty histogram");
    }
}

/// Concurrent-recording soundness: many threads hammering one histogram
/// (shared through a registry clone, as in the real server) lose no
/// samples — the total count and sum are conserved.
#[test]
fn concurrent_recording_conserves_count() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let reg = MetricsRegistry::new();
    let h = reg.histogram("t_ns", "threaded");
    let c = reg.counter("t_total", "threaded");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let h = h.clone();
            let c = c.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    h.record(t * PER_THREAD + i);
                    c.inc();
                }
            });
        }
    });
    assert_eq!(h.count(), THREADS * PER_THREAD);
    assert_eq!(c.get(), THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS * PER_THREAD).sum();
    assert_eq!(h.sum(), expected_sum);
}
