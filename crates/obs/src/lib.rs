//! Zero-dependency observability primitives for the balg workspace.
//!
//! The crate provides four pieces, all lock-free on the hot path:
//!
//! - [`Counter`] — a monotonically increasing atomic `u64`;
//! - [`Gauge`] — an atomic `i64` that can move both ways (queue depths);
//! - [`Histogram`] — a fixed 64-bucket log₂-scale latency histogram.
//!   Recording is a single `fetch_add`; p50/p90/p99 are derived from the
//!   bucket counts after the fact ([`Histogram::quantile`]);
//! - [`MetricsRegistry`] — a named, idempotent registry of the above
//!   with a Prometheus text-exposition renderer
//!   ([`MetricsRegistry::render_prometheus`]).
//!
//! A process-wide registry can be installed once via [`install_global`];
//! instrumented crates look it up with [`global`] and cache the resolved
//! handles, so a process that never installs a registry pays one atomic
//! load per hook site and nothing else. The [`profile`] module holds the
//! span-based per-operator profiler behind `:profile`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

pub mod profile;

/// Number of histogram buckets. Bucket 0 holds the value 0; bucket
/// `i ≥ 1` holds values in `[2^(i−1), 2^i − 1]`; the last bucket is
/// open-ended.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter. Cloning shares the underlying
/// cell, so a handle can be cached per call site.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can rise and fall (e.g. queue depth).
/// Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtract one.
    pub fn dec(&self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// A fixed-bucket log₂-scale histogram of `u64` samples (nanoseconds by
/// convention). Recording is one relaxed `fetch_add` per sample — no
/// locks, no allocation — so concurrent recorders never lose counts.
/// Quantiles are reconstructed from the bucket counts and are therefore
/// upper bounds accurate to one bucket (a factor of two).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCells>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }
}

/// The bucket a sample lands in: 0 for the value 0, otherwise the
/// position of its highest set bit (capped at the open-ended last
/// bucket).
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (`u64::MAX` for the open-ended
/// last bucket).
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        j if j >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        j => (1u64 << j) - 1,
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all recorded samples (wraps on overflow).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough snapshot of the per-bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) reconstructed from the buckets:
    /// the upper bound of the bucket containing the sample of rank
    /// `max(1, ceil(q·n))`. Returns 0 on an empty histogram. Out-of-range
    /// requests are clamped into `[0.0, 1.0]` and a `NaN` request reads
    /// as `0.0` (the minimum) — never a panic, and never a rank outside
    /// the recorded population. (`f64::clamp` itself panics on `NaN`, and
    /// `NaN as u64` saturates to 0 silently, so both are handled before
    /// the arithmetic.)
    pub fn quantile(&self, q: f64) -> u64 {
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let buckets = self.buckets();
        let n: u64 = buckets.iter().sum();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &b) in buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

#[derive(Clone, Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Instrument {
    fn kind(&self) -> &'static str {
        match self {
            Instrument::Counter(_) => "counter",
            Instrument::Gauge(_) => "gauge",
            Instrument::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A named registry of instruments. Registration is idempotent: asking
/// for an existing name returns a handle to the same underlying cell,
/// so independent subsystems can share a metric without coordination.
/// Cloning the registry shares its contents.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<Entry>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, help: &str, fresh: Instrument) -> Instrument {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(entry) = entries.iter().find(|e| e.name == name) {
            assert_eq!(
                entry.instrument.kind(),
                fresh.kind(),
                "metric {name:?} registered twice with different kinds"
            );
            return entry.instrument.clone();
        }
        entries.push(Entry {
            name: name.to_owned(),
            help: help.to_owned(),
            instrument: fresh.clone(),
        });
        fresh
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, Instrument::Counter(Counter::new())) {
            Instrument::Counter(c) => c,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, Instrument::Gauge(Gauge::new())) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        match self.register(name, help, Instrument::Histogram(Histogram::new())) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("kind checked in register"),
        }
    }

    /// Render every registered instrument in Prometheus text-exposition
    /// format, in registration order. Histogram buckets carry raw-unit
    /// (nanosecond) `le` bounds; empty buckets are elided and the last
    /// bucket renders as `+Inf`.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for entry in entries.iter() {
            let name = &entry.name;
            out.push_str(&format!("# HELP {name} {}\n", entry.help));
            out.push_str(&format!("# TYPE {name} {}\n", entry.instrument.kind()));
            match &entry.instrument {
                Instrument::Counter(c) => out.push_str(&format!("{name} {}\n", c.get())),
                Instrument::Gauge(g) => out.push_str(&format!("{name} {}\n", g.get())),
                Instrument::Histogram(h) => {
                    let buckets = h.buckets();
                    let total: u64 = buckets.iter().sum();
                    let mut seen = 0u64;
                    for (i, &b) in buckets.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                        seen += b;
                        if b > 0 {
                            out.push_str(&format!(
                                "{name}_bucket{{le=\"{}\"}} {seen}\n",
                                bucket_upper(i)
                            ));
                        }
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {total}\n"));
                    out.push_str(&format!("{name}_sum {}\n", h.sum()));
                    out.push_str(&format!("{name}_count {total}\n"));
                }
            }
        }
        out
    }
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// Install `registry` as the process-wide registry. Returns `false` if
/// one was already installed (the first install wins; installation is
/// one-way for the life of the process).
pub fn install_global(registry: MetricsRegistry) -> bool {
    GLOBAL.set(registry).is_ok()
}

/// The process-wide registry, if one has been installed.
pub fn global() -> Option<&'static MetricsRegistry> {
    GLOBAL.get()
}

/// Format a nanosecond count for human-facing reports: `ns` below 1µs,
/// then three-decimal `µs`/`ms`/`s`. Pure integer arithmetic, so the
/// rendering is bit-for-bit deterministic.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{}.{:03}\u{b5}s", ns / 1_000, ns % 1_000)
    } else if ns < 1_000_000_000 {
        format!("{}.{:03}ms", ns / 1_000_000, (ns / 1_000) % 1_000)
    } else {
        format!("{}.{:03}s", ns / 1_000_000_000, (ns / 1_000_000) % 1_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every bucket's upper bound lands in that bucket.
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_upper(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn quantile_bounds_known_samples() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 101_106);
        // p50 rank is 3 → sample 3 → bucket [2,3] → upper bound 3.
        assert_eq!(h.quantile(0.5), 3);
        // p99 rank is 6 → sample 100_000 → upper bound 2^17 − 1.
        assert_eq!(h.quantile(0.99), (1 << 17) - 1);
    }

    #[test]
    fn registry_is_idempotent_and_kind_checked() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x_total", "a counter");
        let b = reg.counter("x_total", "a counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter("x_total", "ignored dup help").get(), 3);
    }

    #[test]
    #[should_panic(expected = "different kinds")]
    fn registry_rejects_kind_mismatch() {
        let reg = MetricsRegistry::new();
        reg.counter("x", "c");
        reg.gauge("x", "g");
    }

    #[test]
    fn prometheus_render_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("balg_c_total", "count things").add(7);
        reg.gauge("balg_g", "gauge things").set(-2);
        let h = reg.histogram("balg_h_ns", "time things");
        h.record(0);
        h.record(5);
        h.record(5);
        let text = reg.render_prometheus();
        let expected = "\
# HELP balg_c_total count things
# TYPE balg_c_total counter
balg_c_total 7
# HELP balg_g gauge things
# TYPE balg_g gauge
balg_g -2
# HELP balg_h_ns time things
# TYPE balg_h_ns histogram
balg_h_ns_bucket{le=\"0\"} 1
balg_h_ns_bucket{le=\"7\"} 3
balg_h_ns_bucket{le=\"+Inf\"} 3
balg_h_ns_sum 10
balg_h_ns_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_000), "1.000\u{b5}s");
        assert_eq!(fmt_ns(1_234), "1.234\u{b5}s");
        assert_eq!(fmt_ns(12_345_678), "12.345ms");
        assert_eq!(fmt_ns(1_500_000_000), "1.500s");
    }
}
