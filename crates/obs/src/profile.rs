//! A span-based profiler for `EXPLAIN ANALYZE`-style reports.
//!
//! The evaluator opens a [`SpanId`] per operator node, evaluates the
//! node, and closes the span with the step charge, output cardinality,
//! and an optional fast-path tag. [`Profiler::render`] then prints the
//! frame tree with per-node wall time.
//!
//! By default time comes from a monotonic wall clock. When the
//! [`PROFILE_TICKS_ENV`] environment variable is set, the profiler
//! switches to a **counting clock**: every read advances a counter by a
//! fixed number of ticks (the variable's value, in nanoseconds; 1000 if
//! unparsable). Since evaluation is deterministic, the tick clock makes
//! the whole rendered report deterministic too — that is what lets
//! `:profile` be byte-equal across the CLI, the server, and the serial
//! twin in tests.

use std::time::Instant;

use crate::fmt_ns;

/// Environment variable selecting the deterministic counting clock.
pub const PROFILE_TICKS_ENV: &str = "BALG_PROFILE_TICKS";

/// Maximum number of frames a profiler keeps; spans opened past the cap
/// are dropped (and the report says so), bounding memory on deep plans.
pub const DEFAULT_FRAME_CAP: usize = 4096;

#[derive(Debug)]
enum Clock {
    Wall(Instant),
    Ticks { next: u64, step: u64 },
}

impl Clock {
    fn now_ns(&mut self) -> u64 {
        match self {
            Clock::Wall(start) => u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            Clock::Ticks { next, step } => {
                *next += *step;
                *next
            }
        }
    }
}

/// One closed (or still-open) operator frame.
#[derive(Debug)]
pub struct Frame {
    /// Operator label (e.g. `union+`, `π·× (indexed-join)`).
    pub label: String,
    /// Nesting depth at open time; drives report indentation.
    pub depth: usize,
    start_ns: u64,
    /// Wall (or tick) time between open and close, including children.
    pub elapsed_ns: u64,
    /// Step charge attributed to this frame, including children.
    pub steps: u64,
    /// Distinct-element count of the frame's output bag, when bag-valued.
    pub rows: Option<u64>,
    /// Fast-path tag (e.g. `indexed-join`), when one fired.
    pub tag: Option<&'static str>,
    /// Whether the frame ended in an evaluation error.
    pub error: bool,
}

/// Handle returned by [`Profiler::start`]; pass it back to
/// [`Profiler::finish`]. A capped-out profiler hands back an inert id.
#[derive(Clone, Copy, Debug)]
pub struct SpanId(usize);

const DROPPED: usize = usize::MAX;

/// Records a tree of operator frames for one query evaluation.
#[derive(Debug)]
pub struct Profiler {
    clock: Clock,
    frames: Vec<Frame>,
    stack: Vec<usize>,
    cap: usize,
    truncated: bool,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// A profiler using the wall clock, or the deterministic tick clock
    /// when [`PROFILE_TICKS_ENV`] is set in the environment.
    pub fn new() -> Self {
        let clock = match std::env::var(PROFILE_TICKS_ENV) {
            Ok(v) => Clock::Ticks {
                next: 0,
                step: v.parse().unwrap_or(1000),
            },
            Err(_) => Clock::Wall(Instant::now()),
        };
        Profiler {
            clock,
            frames: Vec::new(),
            stack: Vec::new(),
            cap: DEFAULT_FRAME_CAP,
            truncated: false,
        }
    }

    /// Open a frame. Frames opened past the cap are dropped.
    pub fn start(&mut self, label: impl Into<String>) -> SpanId {
        if self.frames.len() >= self.cap {
            self.truncated = true;
            return SpanId(DROPPED);
        }
        let depth = self.stack.len();
        let start_ns = self.clock.now_ns();
        self.frames.push(Frame {
            label: label.into(),
            depth,
            start_ns,
            elapsed_ns: 0,
            steps: 0,
            rows: None,
            tag: None,
            error: false,
        });
        let id = self.frames.len() - 1;
        self.stack.push(id);
        SpanId(id)
    }

    /// Close a frame with its measurements. Closing out of order pops
    /// any dangling children first, so a `?`-propagated error cannot
    /// corrupt the tree.
    pub fn finish(
        &mut self,
        id: SpanId,
        steps: u64,
        rows: Option<u64>,
        tag: Option<&'static str>,
        error: bool,
    ) {
        if id.0 == DROPPED {
            return;
        }
        let end = self.clock.now_ns();
        while let Some(top) = self.stack.pop() {
            if top == id.0 {
                break;
            }
        }
        let frame = &mut self.frames[id.0];
        frame.elapsed_ns = end.saturating_sub(frame.start_ns);
        frame.steps = steps;
        frame.rows = rows;
        frame.tag = tag;
        frame.error = error;
    }

    /// The recorded frames, in open (pre-)order.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Total time of the root frame (0 if nothing was recorded).
    pub fn total_ns(&self) -> u64 {
        self.frames.first().map_or(0, |f| f.elapsed_ns)
    }

    /// Whether any span was dropped by the frame cap.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Render the frame tree, one line per frame, indented by depth:
    /// `label [tag] — time, steps, rows`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for frame in &self.frames {
            for _ in 0..frame.depth {
                out.push_str("  ");
            }
            out.push_str(&frame.label);
            if let Some(tag) = frame.tag {
                out.push_str(&format!(" [{tag}]"));
            }
            out.push_str(&format!(
                " \u{2014} {}, {} steps",
                fmt_ns(frame.elapsed_ns),
                frame.steps
            ));
            if let Some(rows) = frame.rows {
                out.push_str(&format!(", {rows} rows"));
            }
            if frame.error {
                out.push_str(", error");
            }
            out.push('\n');
        }
        if self.truncated {
            out.push_str(&format!(
                "\u{2026} profile truncated at {} frames\n",
                self.cap
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticks(step: u64) -> Profiler {
        Profiler {
            clock: Clock::Ticks { next: 0, step },
            frames: Vec::new(),
            stack: Vec::new(),
            cap: DEFAULT_FRAME_CAP,
            truncated: false,
        }
    }

    #[test]
    fn tick_clock_renders_deterministically() {
        let mut p = ticks(1000);
        let root = p.start("union+");
        let left = p.start("base R");
        p.finish(left, 1, Some(4), None, false);
        let right = p.start("\u{3c0}\u{b7}\u{d7}");
        p.finish(right, 30, Some(12), Some("indexed-join"), false);
        p.finish(root, 42, Some(7), None, false);
        assert_eq!(
            p.render(),
            "union+ \u{2014} 5.000\u{b5}s, 42 steps, 7 rows\n  \
             base R \u{2014} 1.000\u{b5}s, 1 steps, 4 rows\n  \
             \u{3c0}\u{b7}\u{d7} [indexed-join] \u{2014} 1.000\u{b5}s, 30 steps, 12 rows\n"
        );
        assert_eq!(p.total_ns(), 5000);
    }

    #[test]
    fn frame_cap_truncates_safely() {
        let mut p = ticks(1);
        p.cap = 2;
        let a = p.start("a");
        let b = p.start("b");
        let c = p.start("c");
        p.finish(c, 0, None, None, false);
        p.finish(b, 0, None, None, false);
        p.finish(a, 0, None, None, false);
        assert!(p.truncated());
        assert_eq!(p.frames().len(), 2);
        assert!(p.render().contains("truncated at 2 frames"));
    }

    #[test]
    fn out_of_order_finish_unwinds_stack() {
        let mut p = ticks(1);
        let a = p.start("a");
        let _b = p.start("b");
        // Finish the parent directly (error propagation path).
        p.finish(a, 5, None, None, true);
        assert!(p.stack.is_empty());
        assert!(p.render().contains("error"));
    }
}
