//! The RALG expression language — the nested relational algebra of \[AB87\]
//! in the variant the paper compares BALG against.
//!
//! RALG has the same operator shapes as BALG but set semantics: union,
//! intersection, difference, product, powerset, MAP (with implicit
//! duplicate elimination), selection, tupling, set construction, and
//! set-flattening. `RALGᵏ` restricts all intermediate types to set
//! nesting ≤ k, mirroring `BALGᵏ`.

use std::fmt;
use std::sync::Arc;

use balg_core::expr::Var;
use balg_core::value::Value;

/// A RALG expression.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RalgExpr {
    /// A database relation or λ-bound variable.
    Var(Var),
    /// A constant (must be duplicate-free; deep-deduplicated on eval).
    Lit(Value),
    /// Set union.
    Union(Box<RalgExpr>, Box<RalgExpr>),
    /// Set intersection.
    Intersect(Box<RalgExpr>, Box<RalgExpr>),
    /// Set difference.
    Difference(Box<RalgExpr>, Box<RalgExpr>),
    /// Cartesian product.
    Product(Box<RalgExpr>, Box<RalgExpr>),
    /// Powerset (all subsets).
    Powerset(Box<RalgExpr>),
    /// Tupling.
    Tuple(Vec<RalgExpr>),
    /// Singleton set construction (the paper's "setting" operation).
    Singleton(Box<RalgExpr>),
    /// Attribute projection `αᵢ` (1-based) on a tuple.
    Attr(Box<RalgExpr>, usize),
    /// Flatten a set of sets (`⋃`).
    Flatten(Box<RalgExpr>),
    /// Set-semantics restructuring.
    Map {
        /// λ-bound variable.
        var: Var,
        /// λ body.
        body: Box<RalgExpr>,
        /// Input relation.
        input: Box<RalgExpr>,
    },
    /// Selection.
    Select {
        /// λ-bound variable.
        var: Var,
        /// Predicate.
        pred: Box<RalgPred>,
        /// Input relation.
        input: Box<RalgExpr>,
    },
}

/// A RALG selection predicate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RalgPred {
    /// Always true.
    True,
    /// Equality of two expressions.
    Eq(RalgExpr, RalgExpr),
    /// Membership `φ ∈ φ′`.
    Member(RalgExpr, RalgExpr),
    /// Containment `φ ⊆ φ′`.
    Subset(RalgExpr, RalgExpr),
    /// Negation.
    Not(Box<RalgPred>),
    /// Conjunction.
    And(Box<RalgPred>, Box<RalgPred>),
    /// Disjunction.
    Or(Box<RalgPred>, Box<RalgPred>),
}

impl RalgExpr {
    /// A variable reference.
    pub fn var(name: &str) -> RalgExpr {
        RalgExpr::Var(Arc::from(name))
    }

    /// A constant.
    pub fn lit(value: impl Into<Value>) -> RalgExpr {
        RalgExpr::Lit(value.into())
    }

    /// Set union.
    pub fn union(self, other: RalgExpr) -> RalgExpr {
        RalgExpr::Union(Box::new(self), Box::new(other))
    }

    /// Set intersection.
    pub fn intersect(self, other: RalgExpr) -> RalgExpr {
        RalgExpr::Intersect(Box::new(self), Box::new(other))
    }

    /// Set difference.
    pub fn difference(self, other: RalgExpr) -> RalgExpr {
        RalgExpr::Difference(Box::new(self), Box::new(other))
    }

    /// Cartesian product.
    pub fn product(self, other: RalgExpr) -> RalgExpr {
        RalgExpr::Product(Box::new(self), Box::new(other))
    }

    /// Powerset.
    pub fn powerset(self) -> RalgExpr {
        RalgExpr::Powerset(Box::new(self))
    }

    /// Tupling.
    pub fn tuple(fields: impl IntoIterator<Item = RalgExpr>) -> RalgExpr {
        RalgExpr::Tuple(fields.into_iter().collect())
    }

    /// Singleton set.
    pub fn singleton(self) -> RalgExpr {
        RalgExpr::Singleton(Box::new(self))
    }

    /// Attribute projection.
    pub fn attr(self, index: usize) -> RalgExpr {
        RalgExpr::Attr(Box::new(self), index)
    }

    /// Flatten a set of sets.
    pub fn flatten(self) -> RalgExpr {
        RalgExpr::Flatten(Box::new(self))
    }

    /// `MAP_{λvar.body}(self)`.
    pub fn map(self, var: &str, body: RalgExpr) -> RalgExpr {
        RalgExpr::Map {
            var: Arc::from(var),
            body: Box::new(body),
            input: Box::new(self),
        }
    }

    /// `σ_{λvar.pred}(self)`.
    pub fn select(self, var: &str, pred: RalgPred) -> RalgExpr {
        RalgExpr::Select {
            var: Arc::from(var),
            pred: Box::new(pred),
            input: Box::new(self),
        }
    }

    /// Projection sugar over 1-based attribute indices.
    pub fn project(self, indices: &[usize]) -> RalgExpr {
        let x = RalgExpr::var("π");
        let body = RalgExpr::tuple(indices.iter().map(|&i| x.clone().attr(i)));
        self.map("π", body)
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        let mut count = 1;
        match self {
            RalgExpr::Var(_) | RalgExpr::Lit(_) => {}
            RalgExpr::Union(a, b)
            | RalgExpr::Intersect(a, b)
            | RalgExpr::Difference(a, b)
            | RalgExpr::Product(a, b) => count += a.size() + b.size(),
            RalgExpr::Tuple(fields) => count += fields.iter().map(RalgExpr::size).sum::<usize>(),
            RalgExpr::Powerset(e)
            | RalgExpr::Singleton(e)
            | RalgExpr::Attr(e, _)
            | RalgExpr::Flatten(e) => count += e.size(),
            RalgExpr::Map { body, input, .. } => count += body.size() + input.size(),
            RalgExpr::Select { pred, input, .. } => count += pred.size() + input.size(),
        }
        count
    }
}

impl RalgPred {
    /// Equality.
    pub fn eq(a: RalgExpr, b: RalgExpr) -> RalgPred {
        RalgPred::Eq(a, b)
    }

    /// Conjunction.
    pub fn and(self, other: RalgPred) -> RalgPred {
        RalgPred::And(Box::new(self), Box::new(other))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> RalgPred {
        RalgPred::Not(Box::new(self))
    }

    fn size(&self) -> usize {
        match self {
            RalgPred::True => 1,
            RalgPred::Eq(a, b) | RalgPred::Member(a, b) | RalgPred::Subset(a, b) => {
                1 + a.size() + b.size()
            }
            RalgPred::Not(p) => 1 + p.size(),
            RalgPred::And(a, b) | RalgPred::Or(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl fmt::Display for RalgExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RalgExpr::Var(name) => f.write_str(name),
            RalgExpr::Lit(value) => write!(f, "{value}"),
            RalgExpr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            RalgExpr::Intersect(a, b) => write!(f, "({a} ∩ {b})"),
            RalgExpr::Difference(a, b) => write!(f, "({a} − {b})"),
            RalgExpr::Product(a, b) => write!(f, "({a} × {b})"),
            RalgExpr::Powerset(e) => write!(f, "P({e})"),
            RalgExpr::Tuple(fields) => {
                f.write_str("τ(")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{field}")?;
                }
                f.write_str(")")
            }
            RalgExpr::Singleton(e) => write!(f, "set({e})"),
            RalgExpr::Attr(e, i) => write!(f, "α{i}({e})"),
            RalgExpr::Flatten(e) => write!(f, "⋃({e})"),
            RalgExpr::Map { var, body, input } => {
                write!(f, "MAP[λ{var}.{body}]({input})")
            }
            RalgExpr::Select { var, pred, input } => {
                write!(f, "σ[λ{var}.{pred}]({input})")
            }
        }
    }
}

impl fmt::Display for RalgPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RalgPred::True => f.write_str("⊤"),
            RalgPred::Eq(a, b) => write!(f, "{a} = {b}"),
            RalgPred::Member(a, b) => write!(f, "{a} ∈ {b}"),
            RalgPred::Subset(a, b) => write!(f, "{a} ⊆ {b}"),
            RalgPred::Not(p) => write!(f, "¬({p})"),
            RalgPred::And(a, b) => write!(f, "({a} ∧ {b})"),
            RalgPred::Or(a, b) => write!(f, "({a} ∨ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_size() {
        let q = RalgExpr::var("R").product(RalgExpr::var("S")).select(
            "x",
            RalgPred::eq(RalgExpr::var("x").attr(1), RalgExpr::var("x").attr(2)),
        );
        assert!(q.size() >= 7);
        assert!(q.to_string().contains("α1(x) = α2(x)"));
    }

    #[test]
    fn projection_sugar() {
        let q = RalgExpr::var("R").project(&[2, 1]);
        assert!(matches!(q, RalgExpr::Map { .. }));
    }
}
