//! Direct set-semantics evaluation of RALG expressions.
//!
//! Every operator re-establishes the set invariant, so intermediate
//! results are nested *sets* exactly as in [AB87]/[HS91]. Budgets reuse
//! [`balg_core::eval::Limits`].

use balg_core::bag::BagError;
use balg_core::eval::{EvalError, Limits};
use balg_core::expr::Var;
use balg_core::schema::Database;
use balg_core::value::Value;

use crate::expr::{RalgExpr, RalgPred};
use crate::relation::{deep_dedup, Relation};

/// A reusable RALG evaluator bound to one database (whose bags are viewed
/// as relations via deep duplicate elimination — the `DB′` of
/// Proposition 4.2).
pub struct RalgEvaluator<'a> {
    db: &'a Database,
    limits: Limits,
    env: Vec<(Var, Value)>,
    steps_left: u64,
}

impl<'a> RalgEvaluator<'a> {
    /// Create an evaluator with the given budgets.
    pub fn new(db: &'a Database, limits: Limits) -> Self {
        let steps_left = limits.max_steps;
        RalgEvaluator {
            db,
            limits,
            env: Vec::new(),
            steps_left,
        }
    }

    /// Evaluate a closed expression.
    pub fn eval(&mut self, expr: &RalgExpr) -> Result<Value, EvalError> {
        debug_assert!(self.env.is_empty());
        self.eval_inner(expr)
    }

    /// Evaluate, requiring a relation result.
    pub fn eval_relation(&mut self, expr: &RalgExpr) -> Result<Relation, EvalError> {
        expect_relation(self.eval(expr)?)
    }

    fn step(&mut self) -> Result<(), EvalError> {
        match self.steps_left.checked_sub(1) {
            Some(rest) => {
                self.steps_left = rest;
                Ok(())
            }
            None => Err(EvalError::StepLimit(self.limits.max_steps)),
        }
    }

    fn check_size(&self, rel: &Relation) -> Result<(), EvalError> {
        let count = rel.len() as u64;
        if count > self.limits.max_bag_elements {
            return Err(EvalError::ElementLimit {
                observed: count,
                limit: self.limits.max_bag_elements,
            });
        }
        Ok(())
    }

    fn lookup(&self, name: &Var) -> Result<Value, EvalError> {
        for (bound, value) in self.env.iter().rev() {
            if bound == name {
                return Ok(value.clone());
            }
        }
        self.db
            .get(name)
            .map(|bag| Relation::from_bag(bag).to_value())
            .ok_or_else(|| EvalError::UnboundVariable(name.clone()))
    }

    fn eval_inner(&mut self, expr: &RalgExpr) -> Result<Value, EvalError> {
        self.step()?;
        match expr {
            RalgExpr::Var(name) => self.lookup(name),
            RalgExpr::Lit(value) => Ok(deep_dedup(value)),
            RalgExpr::Union(a, b) => self.eval_binary(a, b, |x, y| Ok(x.union(y))),
            RalgExpr::Intersect(a, b) => self.eval_binary(a, b, |x, y| Ok(x.intersect(y))),
            RalgExpr::Difference(a, b) => self.eval_binary(a, b, |x, y| Ok(x.difference(y))),
            RalgExpr::Product(a, b) => self.eval_binary(a, b, |x, y| x.product(y)),
            RalgExpr::Powerset(e) => {
                let rel = expect_relation(self.eval_inner(e)?)?;
                let out = rel.powerset(self.limits.max_bag_elements)?;
                self.check_size(&out)?;
                Ok(out.to_value())
            }
            RalgExpr::Tuple(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for field in fields {
                    out.push(self.eval_inner(field)?);
                }
                Ok(Value::Tuple(out.into()))
            }
            RalgExpr::Singleton(e) => {
                let value = self.eval_inner(e)?;
                Ok(Relation::from_values([value]).to_value())
            }
            RalgExpr::Attr(e, index) => {
                let value = self.eval_inner(e)?;
                match &value {
                    Value::Tuple(fields) => {
                        fields
                            .get(index.wrapping_sub(1))
                            .cloned()
                            .ok_or(EvalError::Bag(BagError::BadArity {
                                index: *index,
                                arity: fields.len(),
                            }))
                    }
                    other => Err(EvalError::Shape {
                        expected: "a tuple",
                        found: other.to_string(),
                    }),
                }
            }
            RalgExpr::Flatten(e) => {
                let rel = expect_relation(self.eval_inner(e)?)?;
                let out = rel.flatten()?;
                self.check_size(&out)?;
                Ok(out.to_value())
            }
            RalgExpr::Map { var, body, input } => {
                let rel = expect_relation(self.eval_inner(input)?)?;
                let mut out = Relation::new();
                for value in rel.iter() {
                    self.env.push((var.clone(), value.clone()));
                    let image = self.eval_inner(body);
                    self.env.pop();
                    out.insert(image?);
                }
                self.check_size(&out)?;
                Ok(out.to_value())
            }
            RalgExpr::Select { var, pred, input } => {
                let rel = expect_relation(self.eval_inner(input)?)?;
                let mut out = Relation::new();
                for value in rel.iter() {
                    self.env.push((var.clone(), value.clone()));
                    let keep = self.eval_pred(pred);
                    self.env.pop();
                    if keep? {
                        out.insert(value.clone());
                    }
                }
                Ok(out.to_value())
            }
        }
    }

    fn eval_binary(
        &mut self,
        a: &RalgExpr,
        b: &RalgExpr,
        op: impl FnOnce(&Relation, &Relation) -> Result<Relation, BagError>,
    ) -> Result<Value, EvalError> {
        let left = expect_relation(self.eval_inner(a)?)?;
        let right = expect_relation(self.eval_inner(b)?)?;
        let out = op(&left, &right)?;
        self.check_size(&out)?;
        Ok(out.to_value())
    }

    fn eval_pred(&mut self, pred: &RalgPred) -> Result<bool, EvalError> {
        self.step()?;
        match pred {
            RalgPred::True => Ok(true),
            RalgPred::Eq(a, b) => Ok(self.eval_inner(a)? == self.eval_inner(b)?),
            RalgPred::Member(a, b) => {
                let elem = self.eval_inner(a)?;
                let rel = expect_relation(self.eval_inner(b)?)?;
                Ok(rel.contains(&elem))
            }
            RalgPred::Subset(a, b) => {
                let left = expect_relation(self.eval_inner(a)?)?;
                let right = expect_relation(self.eval_inner(b)?)?;
                Ok(left.is_subset_of(&right))
            }
            RalgPred::Not(p) => Ok(!self.eval_pred(p)?),
            RalgPred::And(a, b) => Ok(self.eval_pred(a)? && self.eval_pred(b)?),
            RalgPred::Or(a, b) => Ok(self.eval_pred(a)? || self.eval_pred(b)?),
        }
    }
}

fn expect_relation(value: Value) -> Result<Relation, EvalError> {
    match value {
        Value::Bag(bag) => Ok(Relation::from_bag(&bag)),
        other => Err(EvalError::Shape {
            expected: "a relation",
            found: other.to_string(),
        }),
    }
}

/// Evaluate with default limits.
pub fn eval(expr: &RalgExpr, db: &Database) -> Result<Value, EvalError> {
    RalgEvaluator::new(db, Limits::default()).eval(expr)
}

/// Evaluate with default limits, requiring a relation.
pub fn eval_relation(expr: &RalgExpr, db: &Database) -> Result<Relation, EvalError> {
    RalgEvaluator::new(db, Limits::default()).eval_relation(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use balg_core::bag::Bag;
    use balg_core::natural::Natural;

    fn unary(elems: &[&str]) -> Bag {
        Bag::from_values(elems.iter().map(|e| Value::tuple([Value::sym(e)])))
    }

    #[test]
    fn database_bags_are_viewed_as_sets() {
        let mut bag = Bag::new();
        bag.insert_with_multiplicity(Value::tuple([Value::sym("a")]), Natural::from(5u64));
        let db = Database::new().with("R", bag);
        let rel = eval_relation(&RalgExpr::var("R"), &db).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn union_difference_set_semantics() {
        let db = Database::new()
            .with("R", unary(&["a", "b"]))
            .with("S", unary(&["b", "c"]));
        let u = eval_relation(&RalgExpr::var("R").union(RalgExpr::var("S")), &db).unwrap();
        assert_eq!(u.len(), 3);
        let d = eval_relation(&RalgExpr::var("R").difference(RalgExpr::var("S")), &db).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn map_dedups_images() {
        let db = Database::new().with("R", unary(&["a", "b", "c"]));
        // project everything to a constant: set semantics → one element.
        let q = RalgExpr::var("R").map("x", RalgExpr::tuple([RalgExpr::lit(Value::sym("k"))]));
        let rel = eval_relation(&q, &db).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn powerset_and_flatten_roundtrip() {
        let db = Database::new().with("R", unary(&["a", "b"]));
        let q = RalgExpr::var("R").powerset().flatten();
        let rel = eval_relation(&q, &db).unwrap();
        assert_eq!(rel.len(), 2); // ⋃(P(R)) = R
    }

    #[test]
    fn select_with_membership() {
        let db = Database::new().with("R", unary(&["a", "b"]));
        let q = RalgExpr::var("R").powerset().select(
            "s",
            RalgPred::Member(
                RalgExpr::lit(Value::tuple([Value::sym("a")])),
                RalgExpr::var("s"),
            ),
        );
        let rel = eval_relation(&q, &db).unwrap();
        assert_eq!(rel.len(), 2); // {a} and {a,b}
    }

    #[test]
    fn budget_enforced() {
        let db = Database::new().with("R", unary(&["a", "b", "c", "d", "e"]));
        let limits = Limits {
            max_bag_elements: 8,
            ..Limits::default()
        };
        let mut ev = RalgEvaluator::new(&db, limits);
        assert!(ev.eval(&RalgExpr::var("R").powerset()).is_err());
    }
}
