//! Direct set-semantics evaluation of RALG expressions.
//!
//! Every operator re-establishes the set invariant, so intermediate
//! results are nested *sets* exactly as in \[AB87\]/\[HS91\]. Budgets reuse
//! [`balg_core::eval::Limits`].
//!
//! The evaluator mirrors the throughput work done on the BALG side:
//!
//! * database bags are deduplicated into their `DB′` views **once** per
//!   name and cached (cloning a cached view is an `Arc` bump);
//! * every value the evaluator itself produces is set-shaped by
//!   construction, so intermediates are re-wrapped without the deep
//!   re-deduplication the old evaluator paid after every operator;
//! * adjacent `MAP`/`σ` stages stream each element through the whole
//!   chain in one pass, `MAP` directly over a product streams the pairs
//!   without materializing the product, and `σ_{αᵢ=αⱼ}(e × e′)` with the
//!   equality crossing the product boundary evaluates as a hash join.

use std::collections::HashMap;

use balg_core::bag::{attr_field, Bag, BagBuilder, BagError};
use balg_core::eval::{EvalError, Limits};
use balg_core::expr::Var;
use balg_core::index::{BagIndex, IndexCache};
use balg_core::schema::Database;
use balg_core::value::Value;
use balg_core::{par, pool};
use std::sync::Arc;

use crate::expr::{RalgExpr, RalgPred};
use crate::relation::Relation;

/// A reusable RALG evaluator bound to one database (whose bags are viewed
/// as relations via deep duplicate elimination — the `DB′` of
/// Proposition 4.2).
pub struct RalgEvaluator<'a> {
    db: &'a Database,
    limits: Limits,
    env: Vec<(Var, Value)>,
    steps_left: u64,
    /// Deduplicated `DB′` views, computed once per database name. The old
    /// evaluator re-ran the deep dedup on every variable lookup.
    db_views: HashMap<Var, Value>,
    /// Per-key join indexes over operand relations, shared with the BALG
    /// side's [`IndexCache`] machinery; entries pin the slice they
    /// describe, so repeated joins against a cached `DB′` view probe
    /// instead of rebuilding a hash table.
    indexes: IndexCache,
    /// Whether the indexed join path may run (the differential suites
    /// flip this to prove it equivalent to the scan path).
    use_indexes: bool,
    /// Partitioned-execution settings, mirroring the BALG evaluator:
    /// partition counts are a pure function of `par.chunks`, so every
    /// setting computes the same relations, errors, and step charges.
    par: par::Parallel,
}

/// Always-on per-evaluation counters for the RALG baseline, resolved
/// lazily from the installed [`balg_obs`] registry (recorded once per
/// top-level [`RalgEvaluator::eval`], like the BALG side).
struct RalgObs {
    total: balg_obs::Counter,
    errors: balg_obs::Counter,
    duration: balg_obs::Histogram,
}

static RALG_OBS: std::sync::OnceLock<RalgObs> = std::sync::OnceLock::new();

fn ralg_obs() -> Option<&'static RalgObs> {
    if let Some(obs) = RALG_OBS.get() {
        return Some(obs);
    }
    let registry = balg_obs::global()?;
    let _ = RALG_OBS.set(RalgObs {
        total: registry.counter("balg_ralg_eval_total", "Top-level RALG evaluations"),
        errors: registry.counter(
            "balg_ralg_eval_errors_total",
            "Top-level RALG evaluations that returned an error",
        ),
        duration: registry.histogram(
            "balg_ralg_eval_duration_ns",
            "Wall time per top-level RALG evaluation",
        ),
    });
    RALG_OBS.get()
}

impl<'a> RalgEvaluator<'a> {
    /// Create an evaluator with the given budgets.
    pub fn new(db: &'a Database, limits: Limits) -> Self {
        let steps_left = limits.max_steps;
        RalgEvaluator {
            db,
            limits,
            env: Vec::new(),
            steps_left,
            db_views: HashMap::new(),
            indexes: IndexCache::new(),
            use_indexes: true,
            par: par::Parallel::from_global(),
        }
    }

    /// Enable or disable the indexed join fast path; both settings
    /// compute the same relations. Disabling drops any cached indexes.
    pub fn set_indexing(&mut self, enabled: bool) {
        self.use_indexes = enabled;
        if !enabled {
            self.indexes.clear();
        }
    }

    /// Enable or disable partitioned parallel execution (see
    /// [`balg_core::eval::Evaluator::set_parallel`]); both settings
    /// compute the same relations with the same step charges.
    pub fn set_parallel(&mut self, enabled: bool) {
        self.par.chunks = if enabled {
            pool::default_parallelism()
        } else {
            1
        };
    }

    /// Pin the partition count directly (`<= 1` disables).
    pub fn set_parallel_threads(&mut self, n: usize) {
        self.par.chunks = n.max(1);
    }

    /// Override the minimum work size before operators partition.
    pub fn set_parallel_threshold(&mut self, n: usize) {
        self.par.threshold = n;
    }

    /// Evaluate a closed expression.
    pub fn eval(&mut self, expr: &RalgExpr) -> Result<Value, EvalError> {
        debug_assert!(self.env.is_empty());
        let Some(obs) = ralg_obs() else {
            return self.eval_inner(expr);
        };
        let start = std::time::Instant::now();
        let result = self.eval_inner(expr);
        obs.total.inc();
        if result.is_err() {
            obs.errors.inc();
        }
        obs.duration
            .record(u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        result
    }

    /// Evaluate, requiring a relation result.
    pub fn eval_relation(&mut self, expr: &RalgExpr) -> Result<Relation, EvalError> {
        expect_relation(self.eval(expr)?)
    }

    fn step(&mut self) -> Result<(), EvalError> {
        self.charge_steps(1)
    }

    /// Charge `n` steps at once (the committed partitioned probe charges
    /// its exact pair total in one call, like the serial per-pair loop).
    fn charge_steps(&mut self, n: u64) -> Result<(), EvalError> {
        match self.steps_left.checked_sub(n) {
            Some(rest) => {
                self.steps_left = rest;
                Ok(())
            }
            None => Err(EvalError::StepLimit(self.limits.max_steps)),
        }
    }

    fn check_size(&self, rel: &Relation) -> Result<(), EvalError> {
        let count = rel.len() as u64;
        if count > self.limits.max_bag_elements {
            return Err(EvalError::ElementLimit {
                observed: count,
                limit: self.limits.max_bag_elements,
            });
        }
        Ok(())
    }

    /// Incremental distinct-element guard for the streaming loops.
    fn check_builder_limit(&self, builder: &mut BagBuilder) -> Result<(), EvalError> {
        builder
            .ensure_distinct_within(self.limits.max_bag_elements)
            .map_err(|observed| EvalError::ElementLimit {
                observed,
                limit: self.limits.max_bag_elements,
            })
    }

    fn lookup(&mut self, name: &Var) -> Result<Value, EvalError> {
        for (bound, value) in self.env.iter().rev() {
            if bound == name {
                return Ok(value.clone());
            }
        }
        if let Some(view) = self.db_views.get(name) {
            return Ok(view.clone());
        }
        let view = self
            .db
            .get(name)
            .map(|bag| Relation::from_bag(bag).to_value())
            .ok_or_else(|| EvalError::UnboundVariable(name.clone()))?;
        self.db_views.insert(name.clone(), view.clone());
        Ok(view)
    }

    fn eval_inner(&mut self, expr: &RalgExpr) -> Result<Value, EvalError> {
        self.step()?;
        match expr {
            RalgExpr::Var(name) => self.lookup(name),
            RalgExpr::Lit(value) => Ok(crate::relation::deep_dedup(value)),
            RalgExpr::Union(a, b) => self.eval_binary(a, b, |x, y| Ok(x.union(y))),
            RalgExpr::Intersect(a, b) => self.eval_binary(a, b, |x, y| Ok(x.intersect(y))),
            RalgExpr::Difference(a, b) => self.eval_binary(a, b, |x, y| Ok(x.difference(y))),
            RalgExpr::Product(a, b) => match self.eval_product(a, b, None)? {
                ProductOutcome::Joined(rel) | ProductOutcome::Materialized(rel) => {
                    Ok(rel.to_value())
                }
            },
            RalgExpr::Powerset(e) => {
                let rel = expect_relation(self.eval_inner(e)?)?;
                let out = rel.powerset(self.limits.max_bag_elements)?;
                self.check_size(&out)?;
                Ok(out.to_value())
            }
            RalgExpr::Tuple(fields) => {
                let mut out = Vec::with_capacity(fields.len());
                for field in fields {
                    out.push(self.eval_inner(field)?);
                }
                Ok(Value::Tuple(out.into()))
            }
            RalgExpr::Singleton(e) => {
                let value = self.eval_inner(e)?;
                // The operand is already set-shaped; a singleton of it is
                // too (no re-dedup needed).
                Ok(Value::Bag(balg_core::bag::Bag::singleton(value)))
            }
            RalgExpr::Attr(e, index) => {
                let value = self.eval_inner(e)?;
                match &value {
                    Value::Tuple(fields) => {
                        attr_field(fields, *index).cloned().map_err(EvalError::Bag)
                    }
                    other => Err(EvalError::Shape {
                        expected: "a tuple",
                        found: other.to_string(),
                    }),
                }
            }
            RalgExpr::Flatten(e) => {
                let rel = expect_relation(self.eval_inner(e)?)?;
                let out = rel.flatten()?;
                self.check_size(&out)?;
                Ok(out.to_value())
            }
            RalgExpr::Map { .. } | RalgExpr::Select { .. } => self.eval_stage_chain(expr),
        }
    }

    /// Fused evaluation of a `MAP`/`σ` spine, mirroring the BALG
    /// evaluator: each element streams through every stage in one pass and
    /// only the chain's final relation is materialized. A `MAP` directly
    /// over a product streams the concatenated pairs; a join-shaped `σ`
    /// directly over a product becomes a hash join.
    ///
    /// Entered from [`RalgEvaluator::eval_inner`], which has already
    /// charged the step for the outermost spine node.
    fn eval_stage_chain(&mut self, expr: &RalgExpr) -> Result<Value, EvalError> {
        let mut stages: Vec<Stage<'_>> = Vec::new();
        let mut cur = expr;
        loop {
            match cur {
                RalgExpr::Map { var, body, input } => {
                    stages.push(Stage::Map { var, body });
                    cur = input;
                }
                RalgExpr::Select { var, pred, input } => {
                    stages.push(Stage::Filter { var, pred });
                    cur = input;
                }
                _ => break,
            }
        }
        stages.reverse();
        for _ in 1..stages.len() {
            self.step()?; // the inner spine nodes the fusion skips
        }

        let mut first_stage = 0;
        let base = match (cur, stages.first()) {
            (RalgExpr::Product(a, b), Some(Stage::Filter { var, pred }))
                if equi_join_attrs(pred, var).is_some() =>
            {
                let (i, j) = equi_join_attrs(pred, var).expect("just matched");
                self.step()?; // the Product node, as eval_inner would charge it
                match self.eval_product(a, b, Some((i, j)))? {
                    ProductOutcome::Joined(rel) => {
                        first_stage = 1; // the filter became the join
                        ChainBase::Rel(rel)
                    }
                    ProductOutcome::Materialized(rel) => ChainBase::Rel(rel),
                }
            }
            (RalgExpr::Product(a, b), Some(Stage::Map { .. })) => {
                self.step()?; // the Product node
                let left = expect_relation(self.eval_inner(a)?)?;
                let right = expect_relation(self.eval_inner(b)?)?;
                ChainBase::Pairs(left, right)
            }
            _ => ChainBase::Rel(expect_relation(self.eval_inner(cur)?)?),
        };
        let stages = &stages[first_stage..];
        if stages.is_empty() {
            // The hash join consumed the only stage: its relation is the
            // chain's result, no re-streaming needed.
            if let ChainBase::Rel(rel) = base {
                self.check_size(&rel)?;
                return Ok(rel.to_value());
            }
        }

        let mut out = BagBuilder::new();
        match &base {
            ChainBase::Rel(rel) => {
                for value in rel.iter() {
                    self.run_stages(value.clone(), stages, &mut out)?;
                }
            }
            ChainBase::Pairs(left, right) => {
                for lv in left.iter() {
                    let left_fields = lv
                        .as_tuple()
                        .ok_or_else(|| BagError::NotATuple(lv.clone()))?;
                    for rv in right.iter() {
                        let right_fields = rv
                            .as_tuple()
                            .ok_or_else(|| BagError::NotATuple(rv.clone()))?;
                        self.run_stages(
                            Value::concat_tuples(left_fields, right_fields),
                            stages,
                            &mut out,
                        )?;
                    }
                }
            }
        }
        // Stage outputs are set-shaped values, so clamping the collected
        // multiplicities restores the set invariant without a deep pass.
        let rel = Relation::from_set_bag_unchecked(out.build_set());
        self.check_size(&rel)?;
        Ok(rel.to_value())
    }

    /// Push one element through every stage; survivors land in `out`.
    fn run_stages(
        &mut self,
        value: Value,
        stages: &[Stage<'_>],
        out: &mut BagBuilder,
    ) -> Result<(), EvalError> {
        let mut current = value;
        for stage in stages {
            match stage {
                Stage::Map { var, body } => {
                    self.env.push(((*var).clone(), current));
                    let image = self.eval_inner(body);
                    self.env.pop();
                    current = image?;
                }
                Stage::Filter { var, pred } => {
                    self.env.push(((*var).clone(), current));
                    let keep = self.eval_pred(pred);
                    let (_, value_back) = self.env.pop().expect("balanced λ environment");
                    if !keep? {
                        return Ok(());
                    }
                    current = value_back;
                }
            }
        }
        out.push_one(current);
        self.check_builder_limit(out)
    }

    /// Evaluate `a × b`, optionally under an equi-join filter `αᵢ = αⱼ`
    /// crossing the product boundary. With the shape guards satisfied
    /// (all tuples, uniform arity per side) the matching pairs come from
    /// a hash index on the left side and the product is never built;
    /// otherwise the materializing path runs and the caller must still
    /// apply the filter.
    fn eval_product(
        &mut self,
        a: &RalgExpr,
        b: &RalgExpr,
        join_attrs: Option<(usize, usize)>,
    ) -> Result<ProductOutcome, EvalError> {
        let left = expect_relation(self.eval_inner(a)?)?;
        let right = expect_relation(self.eval_inner(b)?)?;

        if let Some((i, j)) = join_attrs {
            if let (Some(left_arity), Some(right_arity)) =
                (uniform_arity(&left), uniform_arity(&right))
            {
                let spans_boundary =
                    i >= 1 && i <= left_arity && j > left_arity && j <= left_arity + right_arity;
                if spans_boundary {
                    let jr = j - left_arity;
                    // Cached per-key index on the left operand: repeated
                    // joins against the same `DB′` view (or the same
                    // subquery result representation) probe instead of
                    // rebuilding the hash table per query.
                    if self.use_indexes {
                        if let Some(cached) = self.indexes.get_or_build(left.as_bag(), i) {
                            // Optimistic partitioned probe, mirroring the
                            // BALG evaluator: commit only when the pair
                            // total fits both remaining budgets; overflow
                            // re-runs the serial loop below for the exact
                            // serial error payload.
                            if self.par.enabled() && right.len() >= self.par.threshold {
                                let budget = self.steps_left.min(self.limits.max_bag_elements);
                                if let Some((out, pairs)) = par_probe_join_set(
                                    &cached,
                                    right.as_bag(),
                                    jr,
                                    self.par.chunks,
                                    budget,
                                ) {
                                    self.charge_steps(pairs)
                                        .expect("pair count bounded by remaining steps");
                                    let rel = Relation::from_set_bag_unchecked(out);
                                    return Ok(ProductOutcome::Joined(rel));
                                }
                            }
                            let mut out = BagBuilder::new();
                            for rv in right.iter() {
                                let right_fields = rv.as_tuple().expect("checked by uniform_arity");
                                for (lv, _) in cached.group(&right_fields[jr - 1]) {
                                    self.step()?; // one per surviving pair, like the filter
                                    let left_fields =
                                        lv.as_tuple().expect("indexed rows are tuples");
                                    out.push_one(Value::concat_tuples(left_fields, right_fields));
                                    self.check_builder_limit(&mut out)?;
                                }
                            }
                            let rel = Relation::from_set_bag_unchecked(out.build_set());
                            return Ok(ProductOutcome::Joined(rel));
                        }
                    }
                    let mut index: HashMap<&Value, Vec<&Value>> = HashMap::new();
                    for lv in left.iter() {
                        let fields = lv.as_tuple().expect("checked by uniform_arity");
                        index.entry(&fields[i - 1]).or_default().push(lv);
                    }
                    let mut out = BagBuilder::new();
                    for rv in right.iter() {
                        let right_fields = rv.as_tuple().expect("checked by uniform_arity");
                        let Some(matches) = index.get(&right_fields[jr - 1]) else {
                            continue;
                        };
                        for lv in matches {
                            self.step()?; // one per surviving pair, like the filter
                            let left_fields = lv.as_tuple().expect("checked by uniform_arity");
                            out.push_one(Value::concat_tuples(left_fields, right_fields));
                            self.check_builder_limit(&mut out)?;
                        }
                    }
                    let rel = Relation::from_set_bag_unchecked(out.build_set());
                    return Ok(ProductOutcome::Joined(rel));
                }
            }
        }

        let predicted = left.len() as u128 * right.len() as u128;
        let out = if self.par.enabled() && predicted >= self.par.threshold as u128 {
            // `Relation::product` is bag product + dedup; the partitioned
            // kernel computes the identical bag (and identical errors).
            let bag = par::product(
                left.as_bag(),
                right.as_bag(),
                self.limits.max_bag_elements,
                self.par.chunks,
            )?
            .dedup();
            Relation::from_set_bag_unchecked(bag)
        } else {
            left.product(&right, self.limits.max_bag_elements)?
        };
        self.check_size(&out)?;
        Ok(ProductOutcome::Materialized(out))
    }

    fn eval_binary(
        &mut self,
        a: &RalgExpr,
        b: &RalgExpr,
        op: impl FnOnce(&Relation, &Relation) -> Result<Relation, BagError>,
    ) -> Result<Value, EvalError> {
        let left = expect_relation(self.eval_inner(a)?)?;
        let right = expect_relation(self.eval_inner(b)?)?;
        let out = op(&left, &right)?;
        self.check_size(&out)?;
        Ok(out.to_value())
    }

    fn eval_pred(&mut self, pred: &RalgPred) -> Result<bool, EvalError> {
        self.step()?;
        match pred {
            RalgPred::True => Ok(true),
            RalgPred::Eq(a, b) => Ok(self.eval_inner(a)? == self.eval_inner(b)?),
            RalgPred::Member(a, b) => {
                let elem = self.eval_inner(a)?;
                let rel = expect_relation(self.eval_inner(b)?)?;
                Ok(rel.contains(&elem))
            }
            RalgPred::Subset(a, b) => {
                let left = expect_relation(self.eval_inner(a)?)?;
                let right = expect_relation(self.eval_inner(b)?)?;
                Ok(left.is_subset_of(&right))
            }
            RalgPred::Not(p) => Ok(!self.eval_pred(p)?),
            RalgPred::And(a, b) => Ok(self.eval_pred(a)? && self.eval_pred(b)?),
            RalgPred::Or(a, b) => Ok(self.eval_pred(a)? || self.eval_pred(b)?),
        }
    }
}

/// One node of a `MAP`/`σ` spine, borrowed from the expression tree.
enum Stage<'e> {
    Map { var: &'e Var, body: &'e RalgExpr },
    Filter { var: &'e Var, pred: &'e RalgPred },
}

/// A probe-join chunk job: `Some((chunk output, pairs emitted))`, or
/// `None` when the shared budget counter tripped.
type ProbeJoinJob = Box<dyn FnOnce() -> Option<(Bag, u64)> + Send>;

/// Optimistic chunk-parallel probe of a cached join index, set semantics.
///
/// The right (probe) relation's rows are split into `chunks` contiguous
/// ranges; each runs infallibly with a local builder while a shared atomic
/// tracks the global surviving-pair count against `budget`. `None` on
/// overflow (nothing charged — the serial loop reproduces the exact
/// error); on success the chunk sets are disjoint (distinct rows on both
/// sides, uniform left arity), so their additive union equals the serial
/// `build_set` output.
fn par_probe_join_set(
    index: &Arc<BagIndex>,
    probe: &Bag,
    jr: usize,
    chunks: usize,
    budget: u64,
) -> Option<(Bag, u64)> {
    use std::sync::atomic::{AtomicU64, Ordering};
    let n = probe.distinct_count();
    let counter = Arc::new(AtomicU64::new(0));
    let mut jobs: Vec<ProbeJoinJob> = Vec::with_capacity(chunks);
    let mut row = 0usize;
    for k in 1..=chunks {
        let end = n * k / chunks;
        if end <= row {
            continue;
        }
        let probe = probe.clone();
        let index = Arc::clone(index);
        let counter = Arc::clone(&counter);
        let (lo, hi) = (row, end);
        jobs.push(Box::new(move || {
            let mut out = BagBuilder::new();
            let mut pairs = 0u64;
            for (rv, _) in &probe.pairs()[lo..hi] {
                let right_fields = rv.as_tuple().expect("checked by uniform_arity");
                let group = index.group(&right_fields[jr - 1]);
                if group.is_empty() {
                    continue;
                }
                let g = group.len() as u64;
                let before = counter.fetch_add(g, Ordering::Relaxed);
                if before.saturating_add(g) > budget {
                    return None;
                }
                pairs += g;
                for (lv, _) in group {
                    let left_fields = lv.as_tuple().expect("indexed rows are tuples");
                    out.push_one(Value::concat_tuples(left_fields, right_fields));
                }
            }
            Some((out.build_set(), pairs))
        }));
        row = end;
    }
    if jobs.len() <= 1 {
        return None;
    }
    par::note_partitioned(jobs.len());
    let parts = pool::global().run(jobs);
    let mut total = 0u64;
    let mut merged = Bag::new();
    for part in parts {
        let Some((bag, pairs)) = part else {
            par::note_serial_fallback();
            return None;
        };
        total += pairs;
        merged = merged.additive_union(&bag);
    }
    Some((merged, total))
}

/// What a stage chain streams over: an evaluated relation, or the
/// unmaterialized pairs of a product feeding a `MAP` stage.
enum ChainBase {
    Rel(Relation),
    Pairs(Relation, Relation),
}

/// How [`RalgEvaluator::eval_product`] produced its relation.
enum ProductOutcome {
    /// Hash join: the equi-join filter is already applied.
    Joined(Relation),
    /// Full Cartesian product: any filter still needs to run.
    Materialized(Relation),
}

/// Recognize `αᵢ(x) = αⱼ(x)` over the σ-bound variable `x` with `i ≠ j`,
/// normalized to `i < j`.
fn equi_join_attrs(pred: &RalgPred, var: &Var) -> Option<(usize, usize)> {
    let attr_of = |e: &RalgExpr| match e {
        RalgExpr::Attr(inner, ix) => match inner.as_ref() {
            RalgExpr::Var(name) if name == var => Some(*ix),
            _ => None,
        },
        _ => None,
    };
    match pred {
        RalgPred::Eq(a, b) => {
            let (i, j) = (attr_of(a)?, attr_of(b)?);
            if i == j {
                None // trivially true on every tuple — not a join
            } else {
                Some((i.min(j), i.max(j)))
            }
        }
        _ => None,
    }
}

/// `Some(arity)` iff every element is a tuple of the same arity.
fn uniform_arity(rel: &Relation) -> Option<usize> {
    let mut arity = None;
    for value in rel.iter() {
        let len = value.as_tuple()?.len();
        match arity {
            None => arity = Some(len),
            Some(a) if a == len => {}
            Some(_) => return None,
        }
    }
    arity
}

/// Re-wrap an evaluator-produced value as a relation. The evaluator only
/// ever produces set-shaped values (database views are deduplicated at
/// lookup, literals at evaluation, and every operator preserves the
/// invariant), so no re-deduplication runs here — debug builds verify.
fn expect_relation(value: Value) -> Result<Relation, EvalError> {
    match value {
        Value::Bag(bag) => Ok(Relation::from_set_bag_unchecked(bag)),
        other => Err(EvalError::Shape {
            expected: "a relation",
            found: other.to_string(),
        }),
    }
}

/// Evaluate with default limits.
pub fn eval(expr: &RalgExpr, db: &Database) -> Result<Value, EvalError> {
    RalgEvaluator::new(db, Limits::default()).eval(expr)
}

/// Evaluate with default limits, requiring a relation.
pub fn eval_relation(expr: &RalgExpr, db: &Database) -> Result<Relation, EvalError> {
    RalgEvaluator::new(db, Limits::default()).eval_relation(expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use balg_core::bag::Bag;
    use balg_core::natural::Natural;

    fn unary(elems: &[&str]) -> Bag {
        Bag::from_values(elems.iter().map(|e| Value::tuple([Value::sym(e)])))
    }

    #[test]
    fn database_bags_are_viewed_as_sets() {
        let mut bag = Bag::new();
        bag.insert_with_multiplicity(Value::tuple([Value::sym("a")]), Natural::from(5u64));
        let db = Database::new().with("R", bag);
        let rel = eval_relation(&RalgExpr::var("R"), &db).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn union_difference_set_semantics() {
        let db = Database::new()
            .with("R", unary(&["a", "b"]))
            .with("S", unary(&["b", "c"]));
        let u = eval_relation(&RalgExpr::var("R").union(RalgExpr::var("S")), &db).unwrap();
        assert_eq!(u.len(), 3);
        let d = eval_relation(&RalgExpr::var("R").difference(RalgExpr::var("S")), &db).unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn map_dedups_images() {
        let db = Database::new().with("R", unary(&["a", "b", "c"]));
        // project everything to a constant: set semantics → one element.
        let q = RalgExpr::var("R").map("x", RalgExpr::tuple([RalgExpr::lit(Value::sym("k"))]));
        let rel = eval_relation(&q, &db).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn powerset_and_flatten_roundtrip() {
        let db = Database::new().with("R", unary(&["a", "b"]));
        let q = RalgExpr::var("R").powerset().flatten();
        let rel = eval_relation(&q, &db).unwrap();
        assert_eq!(rel.len(), 2); // ⋃(P(R)) = R
    }

    #[test]
    fn select_with_membership() {
        let db = Database::new().with("R", unary(&["a", "b"]));
        let q = RalgExpr::var("R").powerset().select(
            "s",
            RalgPred::Member(
                RalgExpr::lit(Value::tuple([Value::sym("a")])),
                RalgExpr::var("s"),
            ),
        );
        let rel = eval_relation(&q, &db).unwrap();
        assert_eq!(rel.len(), 2); // {a} and {a,b}
    }

    #[test]
    fn budget_enforced() {
        let db = Database::new().with("R", unary(&["a", "b", "c", "d", "e"]));
        let limits = Limits {
            max_bag_elements: 8,
            ..Limits::default()
        };
        let mut ev = RalgEvaluator::new(&db, limits);
        assert!(ev.eval(&RalgExpr::var("R").powerset()).is_err());
    }

    #[test]
    fn attr_index_zero_is_rejected_explicitly() {
        // Regression: `α₀` used to wrap to usize::MAX and surface as a
        // misleading BadArity { index: 0, arity: n }.
        let db = Database::new().with("R", unary(&["a"]));
        let q = RalgExpr::var("R").map("x", RalgExpr::var("x").attr(0));
        match eval(&q, &db) {
            Err(EvalError::Bag(BagError::AttrIndexZero)) => {}
            other => panic!("expected AttrIndexZero, got {other:?}"),
        }
        // Positive out-of-range indices still report the arity.
        let q = RalgExpr::var("R").map("x", RalgExpr::var("x").attr(5));
        assert!(matches!(
            eval(&q, &db),
            Err(EvalError::Bag(BagError::BadArity { index: 5, arity: 1 }))
        ));
    }

    #[test]
    fn fused_join_matches_materialized_select() {
        // σ_{α₂=α₃}(G×G) through the hash join vs the same query shaped so
        // the join fusion cannot fire (filter not directly over product).
        let edges: Vec<Value> = [("a", "b"), ("b", "c"), ("c", "a"), ("b", "a")]
            .iter()
            .map(|(x, y)| Value::tuple([Value::sym(x), Value::sym(y)]))
            .collect();
        let db = Database::new().with("G", Bag::from_values(edges));
        let join = RalgExpr::var("G").product(RalgExpr::var("G")).select(
            "x",
            RalgPred::Eq(RalgExpr::var("x").attr(2), RalgExpr::var("x").attr(3)),
        );
        let joined = eval_relation(&join, &db).unwrap();
        // Same σ, but over a union with the empty relation so the base of
        // the chain is not a Product node.
        let detour = RalgExpr::var("G")
            .product(RalgExpr::var("G"))
            .union(RalgExpr::lit(Value::empty_bag()))
            .select(
                "x",
                RalgPred::Eq(RalgExpr::var("x").attr(2), RalgExpr::var("x").attr(3)),
            );
        let materialized = eval_relation(&detour, &db).unwrap();
        assert_eq!(joined, materialized);
        assert!(joined.contains(&Value::tuple([
            Value::sym("a"),
            Value::sym("b"),
            Value::sym("b"),
            Value::sym("c"),
        ])));
    }

    #[test]
    fn streamed_map_over_product_matches_materialized() {
        let db = Database::new()
            .with("R", unary(&["a", "b", "c"]))
            .with("S", unary(&["x", "y"]));
        let fused = RalgExpr::var("R")
            .product(RalgExpr::var("S"))
            .map("t", RalgExpr::tuple([RalgExpr::var("t").attr(2)]));
        let detour = RalgExpr::var("R")
            .product(RalgExpr::var("S"))
            .union(RalgExpr::lit(Value::empty_bag()))
            .map("t", RalgExpr::tuple([RalgExpr::var("t").attr(2)]));
        let a = eval_relation(&fused, &db).unwrap();
        let b = eval_relation(&detour, &db).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2); // set semantics collapse to the S side
    }

    #[test]
    fn fused_chain_enforces_element_limit_incrementally() {
        // Every pair survives the σ, so the streamed product would emit
        // |R|² = 100 tuples; a budget of 8 must stop the loop early.
        let db = Database::new().with(
            "R",
            Bag::from_values((0..10).map(|i| Value::tuple([Value::int(i)]))),
        );
        let q = RalgExpr::var("R")
            .product(RalgExpr::var("R"))
            .map("t", RalgExpr::var("t"));
        let limits = Limits {
            max_bag_elements: 8,
            ..Limits::default()
        };
        let mut ev = RalgEvaluator::new(&db, limits);
        assert!(matches!(
            ev.eval(&q),
            Err(EvalError::ElementLimit { limit: 8, .. })
        ));
    }
}
