//! The Proposition 4.2 translations between BALG¹₋₋ and RALG₋₋.
//!
//! Proposition 4.2: *the algebra BALG¹ without subtraction has the same
//! expressive power as RALG without difference, over sets.* Concretely:
//!
//! * [`ralg_to_balg`] — every RALG query becomes a BALG query "by adding a
//!   duplicate elimination operation after each operator";
//! * [`balg1_to_ralg`] — every BALG¹₋₋ query `Q` has a RALG₋₋ query `Q′`
//!   with `a ∈ Q(DB) ⟺ a ∈ Q′(DB′)` where `DB′` deduplicates `DB`.
//!
//! [`check_prop_4_2`] verifies the membership equivalence on a concrete
//! database; experiment E10 sweeps it over an expression zoo and random
//! databases. Subtraction must be excluded: Example 4.1 shows bag
//! difference expresses degree comparisons beyond RALG.

use std::fmt;

use balg_core::expr::{Expr, Pred};
use balg_core::schema::Database;
use balg_core::value::Value;

use crate::eval as ralg_eval;
use crate::expr::{RalgExpr, RalgPred};
use crate::relation::{deep_dedup, Relation};

/// Why a BALG expression has no Proposition 4.2 translation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The expression uses bag subtraction `−`, which is strictly more
    /// expressive than RALG (Proposition 4.3).
    UsesSubtraction,
    /// The expression uses an operator outside BALG¹ (`P`, `P_b`, `δ`,
    /// `IFP`).
    NotBalg1(&'static str),
    /// The expression uses order predicates, absent from RALG.
    UsesOrder,
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UsesSubtraction => {
                f.write_str("bag subtraction has no RALG equivalent (Prop 4.3)")
            }
            TranslateError::NotBalg1(op) => write!(f, "operator {op} is outside BALG¹"),
            TranslateError::UsesOrder => f.write_str("order predicates are outside RALG"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translate a BALG¹₋₋ expression into an equivalent RALG₋₋ expression
/// (the hard direction of Proposition 4.2).
pub fn balg1_to_ralg(expr: &Expr) -> Result<RalgExpr, TranslateError> {
    Ok(match expr {
        Expr::Var(name) => RalgExpr::Var(name.clone()),
        Expr::Lit(value) => RalgExpr::Lit(deep_dedup(value)),
        // ∪⁺ and ∪ both become set union.
        Expr::AdditiveUnion(a, b) | Expr::MaxUnion(a, b) => {
            balg1_to_ralg(a)?.union(balg1_to_ralg(b)?)
        }
        Expr::Intersect(a, b) => balg1_to_ralg(a)?.intersect(balg1_to_ralg(b)?),
        Expr::Subtract(_, _) => return Err(TranslateError::UsesSubtraction),
        Expr::Tuple(fields) => RalgExpr::Tuple(
            fields
                .iter()
                .map(balg1_to_ralg)
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Singleton(e) => balg1_to_ralg(e)?.singleton(),
        Expr::Product(a, b) => balg1_to_ralg(a)?.product(balg1_to_ralg(b)?),
        Expr::Attr(e, index) => balg1_to_ralg(e)?.attr(*index),
        Expr::Map { var, body, input } => RalgExpr::Map {
            var: var.clone(),
            body: Box::new(balg1_to_ralg(body)?),
            input: Box::new(balg1_to_ralg(input)?),
        },
        Expr::Select { var, pred, input } => RalgExpr::Select {
            var: var.clone(),
            pred: Box::new(pred_to_ralg(pred)?),
            input: Box::new(balg1_to_ralg(input)?),
        },
        // ε is simply omitted: the RALG side is duplicate-free throughout.
        Expr::Dedup(e) => balg1_to_ralg(e)?,
        Expr::Powerset(_) => return Err(TranslateError::NotBalg1("P")),
        Expr::Powerbag(_) => return Err(TranslateError::NotBalg1("P_b")),
        Expr::Destroy(_) => return Err(TranslateError::NotBalg1("δ")),
        Expr::Ifp { .. } => return Err(TranslateError::NotBalg1("IFP")),
        Expr::Nest { .. } => return Err(TranslateError::NotBalg1("nest")),
    })
}

fn pred_to_ralg(pred: &Pred) -> Result<RalgPred, TranslateError> {
    Ok(match pred {
        Pred::True => RalgPred::True,
        Pred::Eq(a, b) => RalgPred::Eq(balg1_to_ralg(a)?, balg1_to_ralg(b)?),
        Pred::Lt(_, _) | Pred::Le(_, _) => return Err(TranslateError::UsesOrder),
        Pred::Member(a, b) => RalgPred::Member(balg1_to_ralg(a)?, balg1_to_ralg(b)?),
        Pred::SubBag(a, b) => RalgPred::Subset(balg1_to_ralg(a)?, balg1_to_ralg(b)?),
        Pred::Not(p) => RalgPred::Not(Box::new(pred_to_ralg(p)?)),
        Pred::And(a, b) => RalgPred::And(Box::new(pred_to_ralg(a)?), Box::new(pred_to_ralg(b)?)),
        Pred::Or(a, b) => RalgPred::Or(Box::new(pred_to_ralg(a)?), Box::new(pred_to_ralg(b)?)),
    })
}

/// Embed a RALG expression into BALG (the easy direction of
/// Proposition 4.2; works for the *full* nested relational algebra
/// including difference, powerset and flatten). The proposition's recipe
/// inserts `ε` after **every** operator; this embedding is sharper: each
/// relation-valued node is *sealed* — wrapped in `ε` exactly when the
/// static analyzer's set-ness lattice
/// ([`balg_core::analyze::certified_duplicate_free_assuming`]) cannot
/// certify it duplicate-free. On sealed inputs the lattice certifies `∪`
/// (max), `∩`, `−`, `β`, `σ` and `P`, so only the operators that can
/// actually manufacture duplicates — `×` (mixed-arity concatenations can
/// collide), `MAP` (images can collide), `δ` (inner sets can overlap) —
/// and the database bags keep their `ε`.
///
/// Free variables (database bags) get an `ε`; λ-bound variables denote
/// values drawn from the deduplicated database and are assumed
/// duplicate-free (the lattice's `assuming` hook). On flat database
/// relations this is exact; nested database bags must already satisfy
/// the set invariant (a single `ε` cannot deduplicate inner bags).
pub fn ralg_to_balg(expr: &RalgExpr) -> Expr {
    embed(expr, &mut Vec::new())
}

/// Wrap a relation-valued node in `ε` unless the set-ness lattice
/// certifies it duplicate-free, assuming the λ-bound `bound` are sets.
fn seal(e: Expr, bound: &[balg_core::expr::Var]) -> Expr {
    if balg_core::analyze::certified_duplicate_free_assuming(&e, bound) {
        e
    } else {
        e.dedup()
    }
}

fn embed(expr: &RalgExpr, bound: &mut Vec<balg_core::expr::Var>) -> Expr {
    match expr {
        RalgExpr::Var(name) => seal(Expr::Var(name.clone()), bound),
        RalgExpr::Lit(value) => Expr::Lit(deep_dedup(value)),
        RalgExpr::Union(a, b) => {
            let e = embed(a, bound).max_union(embed(b, bound));
            seal(e, bound)
        }
        RalgExpr::Intersect(a, b) => {
            let e = embed(a, bound).intersect(embed(b, bound));
            seal(e, bound)
        }
        RalgExpr::Difference(a, b) => {
            let e = embed(a, bound).subtract(embed(b, bound));
            seal(e, bound)
        }
        RalgExpr::Product(a, b) => {
            let e = embed(a, bound).product(embed(b, bound));
            seal(e, bound)
        }
        RalgExpr::Powerset(e) => seal(embed(e, bound).powerset(), bound),
        RalgExpr::Tuple(fields) => Expr::Tuple(fields.iter().map(|f| embed(f, bound)).collect()),
        RalgExpr::Singleton(e) => seal(embed(e, bound).singleton(), bound),
        RalgExpr::Attr(e, index) => embed(e, bound).attr(*index),
        RalgExpr::Flatten(e) => seal(embed(e, bound).destroy(), bound),
        RalgExpr::Map { var, body, input } => {
            let input = embed(input, bound);
            bound.push(var.clone());
            let body = embed(body, bound);
            bound.pop();
            let e = Expr::Map {
                var: var.clone(),
                body: Box::new(body),
                input: Box::new(input),
            };
            seal(e, bound)
        }
        RalgExpr::Select { var, pred, input } => {
            let input = embed(input, bound);
            bound.push(var.clone());
            let pred = embed_pred(pred, bound);
            bound.pop();
            let e = Expr::Select {
                var: var.clone(),
                pred: Box::new(pred),
                input: Box::new(input),
            };
            seal(e, bound)
        }
    }
}

fn embed_pred(pred: &RalgPred, bound: &mut Vec<balg_core::expr::Var>) -> Pred {
    match pred {
        RalgPred::True => Pred::True,
        RalgPred::Eq(a, b) => Pred::Eq(embed(a, bound), embed(b, bound)),
        RalgPred::Member(a, b) => Pred::Member(embed(a, bound), embed(b, bound)),
        RalgPred::Subset(a, b) => Pred::SubBag(embed(a, bound), embed(b, bound)),
        RalgPred::Not(p) => Pred::Not(Box::new(embed_pred(p, bound))),
        RalgPred::And(a, b) => Pred::And(
            Box::new(embed_pred(a, bound)),
            Box::new(embed_pred(b, bound)),
        ),
        RalgPred::Or(a, b) => Pred::Or(
            Box::new(embed_pred(a, bound)),
            Box::new(embed_pred(b, bound)),
        ),
    }
}

/// Verify the Proposition 4.2 membership equivalence for one BALG¹₋₋
/// query on one database: `a ∈ Q(DB) ⟺ a ∈ Q′(DB′)` for every `a`.
///
/// Returns `Ok(true)` when the supports agree, `Ok(false)` on a
/// counterexample (which would falsify the proposition).
pub fn check_prop_4_2(expr: &Expr, db: &Database) -> Result<bool, Box<dyn std::error::Error>> {
    let translated = balg1_to_ralg(expr)?;
    let bag_result = balg_core::eval::eval_bag(expr, db)?;
    let set_result = ralg_eval::eval_relation(&translated, db)?;
    Ok(Relation::from_bag(&bag_result) == set_result)
}

/// Deduplicate every bag of a database deeply — the `DB′` of
/// Proposition 4.2 as a reusable helper.
pub fn dedup_database(db: &Database) -> Database {
    let mut out = Database::new();
    for (name, bag) in db.iter() {
        let rel = Relation::from_bag(bag);
        match rel.to_value() {
            Value::Bag(b) => out.insert(name, b),
            _ => unreachable!("relation is always a bag"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use balg_core::bag::Bag;
    use balg_core::natural::Natural;

    fn dup_bag(pairs: &[(&str, &str, u64)]) -> Bag {
        let mut bag = Bag::new();
        for (a, b, m) in pairs {
            bag.insert_with_multiplicity(
                Value::tuple([Value::sym(a), Value::sym(b)]),
                Natural::from(*m),
            );
        }
        bag
    }

    #[test]
    fn translation_preserves_membership_on_joins() {
        let db = Database::new().with("G", dup_bag(&[("a", "b", 3), ("b", "c", 1), ("c", "a", 2)]));
        // π₁,₄(σ_{α₂=α₃}(G×G)): two-step paths.
        let q = Expr::var("G")
            .product(Expr::var("G"))
            .select(
                "x",
                Pred::eq(Expr::var("x").attr(2), Expr::var("x").attr(3)),
            )
            .project(&[1, 4]);
        assert!(check_prop_4_2(&q, &db).unwrap());
    }

    #[test]
    fn translation_handles_unions_and_dedup() {
        let db = Database::new()
            .with("R", dup_bag(&[("a", "b", 5)]))
            .with("S", dup_bag(&[("a", "b", 1), ("x", "y", 2)]));
        let q = Expr::var("R")
            .additive_union(Expr::var("S"))
            .dedup()
            .intersect(Expr::var("S"));
        assert!(check_prop_4_2(&q, &db).unwrap());
    }

    #[test]
    fn subtraction_is_rejected() {
        let q = Expr::var("R").subtract(Expr::var("S"));
        assert_eq!(
            balg1_to_ralg(&q).unwrap_err(),
            TranslateError::UsesSubtraction
        );
    }

    #[test]
    fn powerset_is_rejected_as_non_balg1() {
        let q = Expr::var("R").powerset();
        assert_eq!(
            balg1_to_ralg(&q).unwrap_err(),
            TranslateError::NotBalg1("P")
        );
    }

    #[test]
    fn embedding_ralg_into_balg_agrees_with_direct_eval() {
        let db = Database::new()
            .with("R", dup_bag(&[("a", "b", 1), ("b", "c", 1)]))
            .with("S", dup_bag(&[("b", "c", 1)]));
        let ralg_q = RalgExpr::var("R").difference(RalgExpr::var("S"));
        let direct = ralg_eval::eval_relation(&ralg_q, &db).unwrap();
        let embedded = ralg_to_balg(&ralg_q);
        let via_balg = balg_core::eval::eval_bag(&embedded, &db).unwrap();
        assert_eq!(Relation::from_bag(&via_balg), direct);
    }

    #[test]
    fn embedding_handles_powerset_and_flatten() {
        let db = Database::new().with("R", dup_bag(&[("a", "b", 4), ("b", "c", 1)]));
        let ralg_q = RalgExpr::var("R").powerset().flatten();
        let direct = ralg_eval::eval_relation(&ralg_q, &db).unwrap();
        let via_balg = balg_core::eval::eval_bag(&ralg_to_balg(&ralg_q), &db).unwrap();
        assert_eq!(Relation::from_bag(&via_balg), direct);
    }

    #[test]
    fn dedup_database_flattens_multiplicities() {
        let db = Database::new().with("R", dup_bag(&[("a", "b", 9)]));
        let deduped = dedup_database(&db);
        assert_eq!(deduped.get("R").unwrap().cardinality(), Natural::from(1u64));
    }
}
