//! Nested relations: duplicate-free values and set operations.
//!
//! RALG — the complex-object algebra of \[AB87\] that the paper compares
//! against — manipulates (nested) *sets*. We represent a set as a
//! [`Bag`] in which every multiplicity is 1, enforced by this newtype, so
//! that the Proposition 4.2 equivalence `a ∈ Q(DB) ⟺ a ∈ Q′(DB′)` can be
//! checked by direct value comparison against the bag side.

use std::fmt;

use balg_core::bag::{Bag, BagBuilder, BagError};
use balg_core::natural::Natural;
use balg_core::value::Value;

/// A nested relation: a bag whose multiplicities are all 1 and whose
/// elements are themselves duplicate-free all the way down.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Relation {
    inner: Bag,
}

/// Recursively strip duplicates from every bag inside a value — the
/// canonical injection of bag values into set values.
pub fn deep_dedup(value: &Value) -> Value {
    match value {
        Value::Atom(a) => Value::Atom(a.clone()),
        Value::Tuple(fields) => Value::Tuple(fields.iter().map(deep_dedup).collect()),
        Value::Bag(bag) => {
            let mut out = Bag::new();
            for (elem, _) in bag.iter() {
                out.insert_with_multiplicity(deep_dedup(elem), Natural::one());
            }
            // deep_dedup may merge elements; dedup again to restore the
            // set invariant.
            Value::Bag(out.dedup())
        }
    }
}

/// `true` iff every bag inside the value is duplicate-free.
pub fn is_set_value(value: &Value) -> bool {
    match value {
        Value::Atom(_) => true,
        Value::Tuple(fields) => fields.iter().all(is_set_value),
        Value::Bag(bag) => bag
            .iter()
            .all(|(elem, mult)| mult.is_one() && is_set_value(elem)),
    }
}

impl Relation {
    /// The empty relation.
    pub fn new() -> Relation {
        Relation::default()
    }

    /// Build from values, deduplicating deeply.
    pub fn from_values(values: impl IntoIterator<Item = Value>) -> Relation {
        let mut builder = BagBuilder::new();
        for value in values {
            builder.push_one(deep_dedup(&value));
        }
        Relation {
            inner: builder.build_set(),
        }
    }

    /// View a bag as a relation by deep duplicate elimination — the `DB′`
    /// of Proposition 4.2.
    pub fn from_bag(bag: &Bag) -> Relation {
        Relation::from_values(bag.elements().cloned())
    }

    /// Wrap a bag that is already known to satisfy the set invariant all
    /// the way down (every multiplicity one, deeply) — the fast path the
    /// evaluator uses for its own outputs, which are set-shaped by
    /// construction. Debug builds verify the claim.
    pub(crate) fn from_set_bag_unchecked(inner: Bag) -> Relation {
        debug_assert!(
            is_set_value(&Value::Bag(inner.clone())),
            "from_set_bag_unchecked requires a deeply duplicate-free bag"
        );
        Relation { inner }
    }

    /// The underlying duplicate-free bag.
    pub fn as_bag(&self) -> &Bag {
        &self.inner
    }

    /// Consume into the underlying bag.
    pub fn into_bag(self) -> Bag {
        self.inner
    }

    /// As a set-valued [`Value`].
    pub fn to_value(&self) -> Value {
        Value::Bag(self.inner.clone())
    }

    /// Membership.
    pub fn contains(&self, value: &Value) -> bool {
        self.inner.contains(value)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.distinct_count()
    }

    /// `true` iff empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate over the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.inner.elements()
    }

    /// Insert an element (deeply deduplicated).
    pub fn insert(&mut self, value: &Value) {
        let v = deep_dedup(value);
        if !self.inner.contains(&v) {
            self.inner.insert(v);
        }
    }

    // ----- the RALG operations -----

    /// Set union.
    pub fn union(&self, other: &Relation) -> Relation {
        Relation {
            inner: self.inner.max_union(&other.inner),
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Relation) -> Relation {
        Relation {
            inner: self.inner.intersect(&other.inner),
        }
    }

    /// Set difference.
    pub fn difference(&self, other: &Relation) -> Relation {
        Relation {
            inner: self.inner.subtract(&other.inner),
        }
    }

    /// Cartesian product on relations of tuples. The distinct-element
    /// budget is enforced inside the pair loop (see [`Bag::product`]).
    /// Concatenations of mixed-arity tuples can collide, so the result is
    /// re-flattened to multiplicity one — free when no collision happened.
    pub fn product(&self, other: &Relation, max_elements: u64) -> Result<Relation, BagError> {
        Ok(Relation {
            inner: self.inner.product(&other.inner, max_elements)?.dedup(),
        })
    }

    /// The classical powerset: all subsets, each once. On a duplicate-free
    /// bag, `Bag::powerset` enumerates exactly the subsets.
    pub fn powerset(&self, max_elements: u64) -> Result<Relation, BagError> {
        Ok(Relation {
            inner: self.inner.powerset(max_elements)?,
        })
    }

    /// Flatten a relation of relations: `⋃` with duplicate elimination.
    pub fn flatten(&self) -> Result<Relation, BagError> {
        Ok(Relation {
            inner: self.inner.destroy()?.dedup(),
        })
    }

    /// Set-semantics MAP: images, deduplicated.
    pub fn map<E>(&self, mut f: impl FnMut(&Value) -> Result<Value, E>) -> Result<Relation, E> {
        let mut out = BagBuilder::new();
        for value in self.inner.elements() {
            out.push_one(f(value)?);
        }
        Ok(Relation {
            inner: out.build_set(),
        })
    }

    /// Selection.
    pub fn select<E>(&self, pred: impl FnMut(&Value) -> Result<bool, E>) -> Result<Relation, E> {
        Ok(Relation {
            inner: self.inner.select(pred)?,
        })
    }

    /// Projection over 1-based attribute indices (with set semantics).
    pub fn project(&self, indices: &[usize]) -> Result<Relation, BagError> {
        Ok(Relation {
            inner: self.inner.project(indices)?.dedup(),
        })
    }

    /// Subset test.
    pub fn is_subset_of(&self, other: &Relation) -> bool {
        self.inner.is_subbag_of(&other.inner)
    }
}

impl FromIterator<Value> for Relation {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Relation::from_values(iter)
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::tuple([Value::sym(s)])
    }

    #[test]
    fn from_values_dedups() {
        let r = Relation::from_values([v("a"), v("a"), v("b")]);
        assert_eq!(r.len(), 2);
        assert!(is_set_value(&r.to_value()));
    }

    #[test]
    fn from_bag_strips_multiplicities() {
        let mut bag = Bag::new();
        bag.insert_with_multiplicity(v("a"), Natural::from(7u64));
        let r = Relation::from_bag(&bag);
        assert_eq!(r.len(), 1);
        assert!(r.contains(&v("a")));
    }

    #[test]
    fn deep_dedup_reaches_nested_bags() {
        let nested = Value::bag([Value::sym("x"), Value::sym("x"), Value::sym("y")]);
        let d = deep_dedup(&nested);
        assert_eq!(d, Value::bag([Value::sym("x"), Value::sym("y")]));
        assert!(is_set_value(&d));
        assert!(!is_set_value(&nested));
    }

    #[test]
    fn deep_dedup_merges_collapsing_elements() {
        // Two inner bags that become equal after dedup must merge.
        let b1 = Value::bag([Value::sym("x"), Value::sym("x")]);
        let b2 = Value::bag([Value::sym("x")]);
        let outer = Value::bag([b1, b2]);
        let d = deep_dedup(&outer);
        let bag = d.as_bag().unwrap();
        assert_eq!(bag.distinct_count(), 1);
        assert!(is_set_value(&d));
    }

    #[test]
    fn set_operations() {
        let r = Relation::from_values([v("a"), v("b")]);
        let s = Relation::from_values([v("b"), v("c")]);
        assert_eq!(r.union(&s).len(), 3);
        assert_eq!(r.intersect(&s).len(), 1);
        assert_eq!(r.difference(&s).len(), 1);
        assert!(r.difference(&s).contains(&v("a")));
        let prod = r.product(&s, u64::MAX).unwrap();
        assert_eq!(prod.len(), 4);
    }

    #[test]
    fn powerset_is_subsets() {
        let r = Relation::from_values([v("a"), v("b")]);
        let ps = r.powerset(1024).unwrap();
        assert_eq!(ps.len(), 4);
    }

    #[test]
    fn map_set_semantics_collapses() {
        let r = Relation::from_values([v("a"), v("b")]);
        let collapsed = r
            .map(|_| Ok::<_, std::convert::Infallible>(Value::sym("z")))
            .unwrap();
        assert_eq!(collapsed.len(), 1);
    }

    #[test]
    fn flatten_unions_inner_sets() {
        let inner1 = Value::bag([Value::sym("x"), Value::sym("y")]);
        let inner2 = Value::bag([Value::sym("y"), Value::sym("z")]);
        let r = Relation::from_values([inner1, inner2]);
        let flat = r.flatten().unwrap();
        assert_eq!(flat.len(), 3);
    }

    #[test]
    fn projection_dedups() {
        let r = Relation::from_values([
            Value::tuple([Value::sym("a"), Value::sym("1")]),
            Value::tuple([Value::sym("a"), Value::sym("2")]),
        ]);
        let p = r.project(&[1]).unwrap();
        assert_eq!(p.len(), 1); // set semantics: one [a]
    }
}
