//! # balg-relational — the nested relational algebra RALG
//!
//! The set-semantics baseline the paper measures BALG against: nested
//! relations, the RALG operator set of \[AB87\]/\[HS91\], a direct evaluator,
//! and the Proposition 4.2 translations showing
//! `BALG¹₋₋ ≡ RALG₋₋` over sets (and that the equivalence *breaks* once
//! bag subtraction enters — Example 4.1 / Proposition 4.3, experiment E7).
//!
//! ```
//! use balg_core::prelude::*;
//! use balg_relational::prelude::*;
//!
//! // A graph with duplicate edges: RALG sees it as a set.
//! let mut g = Bag::new();
//! g.insert_with_multiplicity(
//!     Value::tuple([Value::sym("a"), Value::sym("b")]),
//!     Natural::from(3u64),
//! );
//! let db = Database::new().with("G", g);
//! let rel = ralg_eval_relation(&RalgExpr::var("G"), &db).unwrap();
//! assert_eq!(rel.len(), 1); // duplicates invisible to set semantics
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod expr;
pub mod relation;
pub mod translate;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::eval::{eval as ralg_eval, eval_relation as ralg_eval_relation, RalgEvaluator};
    pub use crate::expr::{RalgExpr, RalgPred};
    pub use crate::relation::{deep_dedup, is_set_value, Relation};
    pub use crate::translate::{
        balg1_to_ralg, check_prop_4_2, dedup_database, ralg_to_balg, TranslateError,
    };
}

pub use prelude::*;
