//! Property tests for the RALG set semantics and the Prop 4.2 boundary.

use balg_core::bag::Bag;
use balg_core::natural::Natural;
use balg_core::schema::Database;
use balg_core::value::Value;
use balg_relational::prelude::*;
use proptest::prelude::*;

fn relation() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_set(0u8..6, 0..6).prop_map(|elems| {
        Relation::from_values(
            elems
                .into_iter()
                .map(|e| Value::tuple([Value::int(e as i64)])),
        )
    })
}

fn noisy_bag() -> impl Strategy<Value = Bag> {
    proptest::collection::btree_map((0u8..4, 0u8..4), 1u64..5, 0..8).prop_map(|edges| {
        Bag::from_counted(edges.into_iter().map(|((a, b), m)| {
            (
                Value::tuple([Value::int(a as i64), Value::int(b as i64)]),
                Natural::from(m),
            )
        }))
    })
}

/// A literal small unary relation.
fn small_lit() -> impl Strategy<Value = RalgExpr> {
    proptest::collection::btree_set(0u8..4, 0..3).prop_map(|elems| {
        RalgExpr::Lit(Value::bag(
            elems
                .into_iter()
                .map(|e| Value::tuple([Value::int(e as i64)])),
        ))
    })
}

/// Random relation-valued RALG queries over the fixed `R`/`S` database:
/// the whole operator surface (union, intersection, difference, product,
/// selection, map, powerset, flatten) with attribute indices that may or
/// may not be in range — out-of-range queries must fail on *both*
/// evaluation routes.
fn ralg_query() -> impl Strategy<Value = RalgExpr> {
    let leaf = prop_oneof![
        Just(RalgExpr::var("R")),
        Just(RalgExpr::var("S")),
        small_lit(),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.union(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.intersect(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.difference(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.product(b)),
            (inner.clone(), 1usize..4, 1usize..4).prop_map(|(e, i, j)| {
                e.select(
                    "x",
                    RalgPred::Eq(RalgExpr::var("x").attr(i), RalgExpr::var("x").attr(j)),
                )
            }),
            (inner.clone(), 1usize..4)
                .prop_map(|(e, i)| { e.map("x", RalgExpr::tuple([RalgExpr::var("x").attr(i)])) }),
            inner.prop_map(|e| e.map("x", RalgExpr::var("x").singleton())),
            // Powerset only over the small leaves, to keep 2^n tame.
            prop_oneof![Just(RalgExpr::var("S")), small_lit()].prop_map(RalgExpr::powerset),
            Just(RalgExpr::var("S").powerset().flatten()),
        ]
    })
}

/// The fixed database the differential test runs against: noisy
/// multiplicities so the `DB′` dedup view actually differs from the bags.
fn differential_db() -> Database {
    let mut r = Bag::new();
    for (a, b, m) in [(0, 1, 3u64), (1, 2, 1), (2, 0, 2), (1, 0, 1)] {
        r.insert_with_multiplicity(
            Value::tuple([Value::int(a), Value::int(b)]),
            Natural::from(m),
        );
    }
    let mut s = Bag::new();
    for (v, m) in [(0, 2u64), (1, 1), (3, 4)] {
        s.insert_with_multiplicity(Value::tuple([Value::int(v)]), Natural::from(m));
    }
    Database::new().with("R", r).with("S", s)
}

proptest! {
    #[test]
    fn set_laws(a in relation(), b in relation(), c in relation()) {
        // Boolean-algebra laws that hold for sets but NOT for bags under
        // ∪⁺/−: idempotence and absorption.
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.intersect(&a), a.clone());
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(
            a.union(&b).intersect(&a.union(&c)),
            a.union(&b.intersect(&c))
        );
        // Difference laws.
        prop_assert_eq!(a.difference(&b).intersect(&b), Relation::new());
        prop_assert_eq!(a.difference(&b).union(&a.intersect(&b)), a.clone());
    }

    #[test]
    fn dedup_view_forgets_exactly_multiplicity(bag in noisy_bag()) {
        let rel = Relation::from_bag(&bag);
        prop_assert_eq!(rel.len(), bag.distinct_count());
        for value in bag.elements() {
            prop_assert!(rel.contains(value));
        }
    }

    #[test]
    fn prop_4_2_on_random_bags(bag in noisy_bag()) {
        // The subtraction-free identity query family commutes with
        // dedup via the translation.
        let db = Database::new().with("G", bag);
        let q = balg_core::expr::Expr::var("G")
            .project(&[2, 1])
            .additive_union(balg_core::expr::Expr::var("G").project(&[1, 2]));
        prop_assert!(check_prop_4_2(&q, &db).unwrap());
    }

    #[test]
    fn embedding_respects_powerset(rel in relation()) {
        // P on the RALG side == dedup'd bag powerset of the dedup'd bag.
        if rel.len() <= 8 {
            let db = Database::new().with("R", rel.as_bag().clone());
            let direct = RalgEvaluator::new(&db, balg_core::eval::Limits::default())
                .eval_relation(&RalgExpr::var("R").powerset())
                .unwrap();
            let embedded = ralg_to_balg(&RalgExpr::var("R").powerset());
            let via_balg = balg_core::eval::eval_bag(&embedded, &db).unwrap();
            prop_assert_eq!(Relation::from_bag(&via_balg), direct);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The PR-3 differential property pinning the RALG evaluator rewrite
    /// and the sharpened `ralg_to_balg` embedding: every random RALG query
    /// must produce, via direct set-semantics evaluation, exactly the bag
    /// the BALG embedding computes — not just the same support, the same
    /// (set-shaped) value. Queries that fail (out-of-range attributes,
    /// products over non-tuples) must fail on both routes.
    #[test]
    fn direct_eval_agrees_with_balg_embedding(q in ralg_query()) {
        let db = differential_db();
        let direct = RalgEvaluator::new(&db, balg_core::eval::Limits::default()).eval_relation(&q);
        let embedded = ralg_to_balg(&q);
        let via = balg_core::eval::eval_bag(&embedded, &db);
        match (direct, via) {
            (Ok(direct), Ok(via)) => {
                prop_assert!(
                    is_set_value(&Value::Bag(via.clone())),
                    "embedding produced duplicates: {}", via
                );
                prop_assert_eq!(direct.as_bag(), &via);
            }
            (Err(_), Err(_)) => {} // both routes reject, e.g. BadArity
            (direct, via) => panic!("divergence: direct={direct:?} via={via:?}"),
        }
    }
}
