//! Property tests for the RALG set semantics and the Prop 4.2 boundary.

use balg_core::bag::Bag;
use balg_core::natural::Natural;
use balg_core::schema::Database;
use balg_core::value::Value;
use balg_relational::prelude::*;
use proptest::prelude::*;

fn relation() -> impl Strategy<Value = Relation> {
    proptest::collection::btree_set(0u8..6, 0..6).prop_map(|elems| {
        Relation::from_values(
            elems
                .into_iter()
                .map(|e| Value::tuple([Value::int(e as i64)])),
        )
    })
}

fn noisy_bag() -> impl Strategy<Value = Bag> {
    proptest::collection::btree_map((0u8..4, 0u8..4), 1u64..5, 0..8).prop_map(|edges| {
        Bag::from_counted(edges.into_iter().map(|((a, b), m)| {
            (
                Value::tuple([Value::int(a as i64), Value::int(b as i64)]),
                Natural::from(m),
            )
        }))
    })
}

proptest! {
    #[test]
    fn set_laws(a in relation(), b in relation(), c in relation()) {
        // Boolean-algebra laws that hold for sets but NOT for bags under
        // ∪⁺/−: idempotence and absorption.
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.intersect(&a), a.clone());
        prop_assert_eq!(a.union(&a.intersect(&b)), a.clone());
        prop_assert_eq!(
            a.union(&b).intersect(&a.union(&c)),
            a.union(&b.intersect(&c))
        );
        // Difference laws.
        prop_assert_eq!(a.difference(&b).intersect(&b), Relation::new());
        prop_assert_eq!(a.difference(&b).union(&a.intersect(&b)), a.clone());
    }

    #[test]
    fn dedup_view_forgets_exactly_multiplicity(bag in noisy_bag()) {
        let rel = Relation::from_bag(&bag);
        prop_assert_eq!(rel.len(), bag.distinct_count());
        for value in bag.elements() {
            prop_assert!(rel.contains(value));
        }
    }

    #[test]
    fn prop_4_2_on_random_bags(bag in noisy_bag()) {
        // The subtraction-free identity query family commutes with
        // dedup via the translation.
        let db = Database::new().with("G", bag);
        let q = balg_core::expr::Expr::var("G")
            .project(&[2, 1])
            .additive_union(balg_core::expr::Expr::var("G").project(&[1, 2]));
        prop_assert!(check_prop_4_2(&q, &db).unwrap());
    }

    #[test]
    fn embedding_respects_powerset(rel in relation()) {
        // P on the RALG side == dedup'd bag powerset of the dedup'd bag.
        if rel.len() <= 8 {
            let db = Database::new().with("R", rel.as_bag().clone());
            let direct = RalgEvaluator::new(&db, balg_core::eval::Limits::default())
                .eval_relation(&RalgExpr::var("R").powerset())
                .unwrap();
            let embedded = ralg_to_balg(&RalgExpr::var("R").powerset());
            let via_balg = balg_core::eval::eval_bag(&embedded, &db).unwrap();
            prop_assert_eq!(Relation::from_bag(&via_balg), direct);
        }
    }
}
