//! # balg-machine — Turing machines and their bag-algebra encodings
//!
//! The Section 6 machinery plus the Section 2 counters remark: a
//! deterministic TM substrate ([`tm`]), counter machines whose registers
//! are bags ([`counter`], the \[GM95\] bags↔counters link), the
//! hyper-exponential counting expressions `N`/`E`/`D` of Theorems 6.1/6.2
//! and Lemma 5.7 ([`encoding`]), and the Theorem 6.6 compilation of
//! machines into BALG + inflationary-fixpoint programs whose fixpoint rows
//! decode back into the very configurations the direct simulator produces
//! ([`mod@compile`]).
//!
//! ```
//! use balg_core::eval::Limits;
//! use balg_machine::prelude::*;
//!
//! let tm = flip_machine();
//! let direct = tm.run(&['0', '1'], 2, 100).unwrap();
//! let compiled = compile(&tm, &['0', '1'], 2);
//! let via_algebra = compiled.run(Limits::default()).unwrap();
//! assert!(compiled.agrees_with(&direct, &via_algebra));
//! assert_eq!(&via_algebra.final_config.tape[..2], &['1', '0']);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod compile;
pub mod counter;
pub mod encoding;
pub mod tm;

/// Commonly used items, re-exported.
pub mod prelude {
    pub use crate::compile::{
        accept_expr, compile, decode_rows, expected_row_count, index_bag, BagRun, BagRunError,
        CompiledTm, DecodeError, DecodedConfig,
    };
    pub use crate::counter::{
        addition_machine, compile_counter, doubling_machine, CompiledCounterMachine,
        CounterBagError, CounterError, CounterInstr, CounterMachine, CounterRun,
    };
    pub use crate::encoding::{d_of, d_sparse, e_of, e_powerbag, e_tower, n_map, n_of};
    pub use crate::tm::{
        flip_machine, parity_machine, unary_successor_machine, zigzag_machine, Config, Move, Run,
        State, Sym, Tm, TmError,
    };
}

pub use prelude::*;
