//! The hyper-exponential counting expressions of Theorems 6.1/6.2 and
//! Lemma 5.7.
//!
//! * `N(B) = π₁(⟦[a]⟧ × B)` normalizes a bag of tuples to `⟦[a]^|B|⟧`;
//! * `E(B) = N(P(P(N(B))))` produces `⟦[a]^(2^{|B|+1})⟧` — the double
//!   powerset is the paper's engine of exponential duplicate growth
//!   (Proposition 3.2): one `P` alone explodes only once;
//! * `D(B) = P(Eⁱ(B))` is the bounded index domain: one occurrence of
//!   each bag of size `0 … hyper(i)(|B|)`;
//! * `E_pb(B)` is the Lemma 5.7 variant with a **single** powerbag in
//!   place of the double powerset — powerbag distinguishes occurrences,
//!   so one application already doubles exponentially (Theorem 5.5 keeps
//!   the nesting inside BALG² this way).

use balg_core::derived::{count, count_product};
use balg_core::expr::Expr;

/// `N(B) = π₁(⟦[a]⟧ × B)` for a bag of tuples: `⟦[a]^|B|⟧`.
pub fn n_of(b: Expr) -> Expr {
    count_product(b)
}

/// `N` for bags of arbitrary element type, via MAP (same result).
pub fn n_map(b: Expr) -> Expr {
    count(b)
}

/// `E(B) = N(P(P(N(B))))`: a bag of `2^{|B|+1}` occurrences of `[a]`.
/// (The two nested `P`s require intermediate nesting 3 — this is why the
/// Theorem 6.1 construction needs BALG³.)
pub fn e_of(b: Expr) -> Expr {
    n_map(n_map(b).powerset().powerset())
}

/// `Eⁱ(B)`: the `i`-fold tower. `E⁰(B) = N(B)`.
pub fn e_tower(b: Expr, i: u32) -> Expr {
    let mut acc = n_map(b);
    for _ in 0..i {
        acc = e_of(acc);
    }
    acc
}

/// `D(B) = P(Eⁱ(B))`: the bounded quantification domain — one occurrence
/// of each integer bag `⟦[a]^j⟧` for `j = 0 … 2↑ⁱ(|B|)`-ish.
pub fn d_of(b: Expr, i: u32) -> Expr {
    e_tower(b, i).powerset()
}

/// Lemma 5.7's exponential step using the powerbag:
/// `E_pb(B) = count(P_b(B))`, a bag of `2^|B|` occurrences of `[a]`,
/// with **no** increase of bag nesting beyond 2.
///
/// (The journal text renders the expression as `π₂(P_b(bₙ) × ⟦[a]⟧)`;
/// since `P_b(bₙ)` is a bag of bags — not tuples — the product form does
/// not type-check, and the MAP-based count computes the same bag.)
pub fn e_powerbag(b: Expr) -> Expr {
    count(b.powerbag())
}

/// The sparse-input shortcut of Theorem 6.2: for inputs whose elements
/// are (mostly) distinct, `P(P(B))` already explodes doubly, so
/// `E^{i−2}`-many further steps suffice: `P(E^{i-2}(N(P(P(B)))))`.
pub fn d_sparse(b: Expr, i: u32) -> Expr {
    let base = n_map(b.powerset().powerset());
    let mut acc = base;
    for _ in 0..i.saturating_sub(2) {
        acc = e_of(acc);
    }
    acc.powerset()
}

#[cfg(test)]
mod tests {
    use super::*;
    use balg_core::bag::Bag;
    use balg_core::derived::decode_int;
    use balg_core::eval::{eval_bag, Evaluator, Limits};
    use balg_core::natural::Natural;
    use balg_core::schema::Database;
    use balg_core::value::Value;

    fn unary_db(n: u64) -> Database {
        Database::new().with("B", Bag::repeated(Value::tuple([Value::sym("u")]), n))
    }

    #[test]
    fn n_of_counts() {
        let db = unary_db(5);
        let out = eval_bag(&n_of(Expr::var("B")), &db).unwrap();
        assert_eq!(decode_int(&Value::Bag(out)), Some(Natural::from(5u64)));
    }

    #[test]
    fn e_of_is_exponential() {
        // |B| = 3 → E(B) has 2^(3+1) = 16 occurrences of [a].
        let db = unary_db(3);
        let out = eval_bag(&e_of(Expr::var("B")), &db).unwrap();
        assert_eq!(out.cardinality(), Natural::from(16u64));
    }

    #[test]
    fn d_of_enumerates_integer_domain() {
        // D with i=0: P(N(B)) = integer bags 0..|B| — |B|+1 elements.
        let db = unary_db(4);
        let out = eval_bag(&d_of(Expr::var("B"), 0), &db).unwrap();
        assert_eq!(out.cardinality(), Natural::from(5u64));
        // Every element is an integer bag of distinct size.
        let sizes: std::collections::BTreeSet<u64> = out
            .elements()
            .map(|v| decode_int(v).and_then(|n| n.to_u64()).expect("integer bag"))
            .collect();
        assert_eq!(sizes, (0..=4u64).collect());
    }

    #[test]
    fn e_powerbag_matches_double_powerset_growth() {
        // E_pb(⟦u⟧ⁿ) = ⟦[a]^(2^n)⟧.
        for n in [0u64, 1, 4, 6] {
            let db = Database::new().with("B", Bag::repeated(Value::sym("u"), n));
            let out = eval_bag(&e_powerbag(Expr::var("B")), &db).unwrap();
            assert_eq!(out.cardinality(), Natural::pow2(n), "at n={n}");
        }
    }

    #[test]
    fn tower_growth_is_hyperexponential() {
        // E¹ on |B|=1: 2^(1+1) = 4; E² : 2^(4+1) = 32.
        let db = unary_db(1);
        let e1 = eval_bag(&e_tower(Expr::var("B"), 1), &db).unwrap();
        assert_eq!(e1.cardinality(), Natural::from(4u64));
        let e2 = eval_bag(&e_tower(Expr::var("B"), 2), &db).unwrap();
        assert_eq!(e2.cardinality(), Natural::from(32u64));
    }

    #[test]
    fn tower_is_budget_guarded() {
        let db = unary_db(8);
        let limits = Limits {
            max_bag_elements: 1 << 10,
            ..Limits::default()
        };
        let mut ev = Evaluator::new(&db, limits);
        // E³(8) needs ~2^(2^(2^9)) elements: must fail fast, not hang.
        assert!(ev.eval(&e_tower(Expr::var("B"), 3)).is_err());
    }

    #[test]
    fn sparse_shortcut_types_out() {
        // d_sparse on distinct elements: P(P(B)) on 2 distinct singleton
        // tuples = 16 subbags-of-subbags → N → 16 units → P → 17 ints.
        let db = Database::new().with(
            "B",
            Bag::from_values([
                Value::tuple([Value::sym("x")]),
                Value::tuple([Value::sym("y")]),
            ]),
        );
        let out = eval_bag(&d_sparse(Expr::var("B"), 2), &db).unwrap();
        assert_eq!(out.cardinality(), Natural::from(17u64));
    }
}
