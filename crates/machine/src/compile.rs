//! Theorem 6.6: compiling a Turing machine to a BALG + IFP program.
//!
//! A computation is represented — exactly as in Theorems 6.1/6.6 — by a
//! bag of 4-tuples `[t, p, s, q]` of type `[⟦U⟧, ⟦U⟧, U, U]`:
//!
//! * `t` is the **time stamp**, a bag of `t` counter atoms;
//! * `p` is the **tape position**, a bag of `p` counter atoms (1-based);
//! * `s` is the cell's symbol;
//! * `q` is the machine state when the head is on that cell, or the
//!   no-head marker `∘` (the paper's `g`) otherwise.
//!
//! The inflationary fixpoint iterates the step expression
//! `T(M) = φ(M) ∪ M`: each iteration joins the head row of the latest
//! configuration against its neighbour rows (Cartesian product + equality
//! selections on the time/position bags, with successor expressed as
//! `p ∪⁺ ⟦•⟧`) and emits the time-`t+1` rows per the paper's clauses
//! (a)–(c). Old configurations can never be removed — the time stamp is
//! exactly the paper's device for tolerating that.
//!
//! The represented tape portion is fixed up front (input + padding), the
//! substitution Theorem 6.1 makes by bounding the index domain `D(B)`.

use std::fmt;

use balg_core::bag::{Bag, BagBuilder};
use balg_core::eval::{EvalError, Evaluator, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::natural::Natural;
use balg_core::schema::Database;
use balg_core::value::{Atom, Value};

use crate::tm::{Move, Run, Sym, Tm};

/// The counter atom used inside time/position bags.
const COUNTER: &str = "•";
/// The no-head marker (the paper's `g`).
const NO_HEAD: &str = "∘";

fn counter_atom() -> Value {
    Value::sym(COUNTER)
}

/// The time/position bag of cardinality `n`.
pub fn index_bag(n: u64) -> Value {
    Value::Bag(Bag::repeated(counter_atom(), n))
}

fn sym_atom(s: Sym) -> Value {
    Value::Atom(Atom::sym(&format!("s:{s}")))
}

fn state_atom(q: &str) -> Value {
    Value::Atom(Atom::sym(&format!("q:{q}")))
}

fn no_head_atom() -> Value {
    Value::sym(NO_HEAD)
}

/// `e ∪⁺ ⟦•⟧` — successor on index bags.
fn succ(e: Expr) -> Expr {
    e.additive_union(Expr::Lit(Value::Bag(Bag::singleton(counter_atom()))))
}

/// A machine compiled to a BALG+IFP program over an initial configuration
/// database.
pub struct CompiledTm {
    /// The machine this program simulates.
    pub tm: Tm,
    /// The full program: `IFP_M(step)(C0)`.
    pub program: Expr,
    /// The database binding `C0` to the encoded initial configuration.
    pub database: Database,
    /// Number of represented tape cells.
    pub tape_cells: usize,
}

/// One decoded configuration extracted from the fixpoint rows.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DecodedConfig {
    /// The time stamp.
    pub time: u64,
    /// Tape contents, cell 1 first.
    pub tape: Vec<Sym>,
    /// 0-based head position, if a head row exists at this time.
    pub head: Option<usize>,
    /// The state name at the head, if any.
    pub state: Option<String>,
}

/// Errors raised while decoding fixpoint rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// A row was not a well-formed `[t, p, s, q]` tuple.
    MalformedRow(String),
    /// The fixpoint produced no rows at all.
    Empty,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::MalformedRow(row) => write!(f, "malformed configuration row {row}"),
            DecodeError::Empty => f.write_str("no configuration rows"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Compile `tm` on `input` with `padding` extra blank cells.
pub fn compile(tm: &Tm, input: &[Sym], padding: usize) -> CompiledTm {
    let cells = (input.len() + padding).max(1);
    // enc(B): the time-0 rows.
    let mut rows = BagBuilder::with_capacity(cells);
    for i in 0..cells {
        let sym = input.get(i).copied().unwrap_or(tm.blank);
        let state = if i == 0 {
            state_atom(&tm.initial)
        } else {
            no_head_atom()
        };
        rows.push_one(Value::tuple([
            index_bag(0),
            index_bag(i as u64 + 1),
            sym_atom(sym),
            state,
        ]));
    }
    let database = Database::new().with("C0", rows.build());

    // The step expression: union of the per-instruction M_λ expressions.
    let mut body: Option<Expr> = None;
    for ((q1, s1), (q2, s2, mv)) in &tm.transitions {
        let instr = instruction_expr(q1, *s1, q2, *s2, *mv);
        body = Some(match body {
            None => instr,
            Some(acc) => acc.max_union(instr),
        });
    }
    // A machine with no instructions is immediately at fixpoint.
    let body = body.unwrap_or_else(|| Expr::var("M"));
    let program = Expr::var("C0").ifp("M", body);
    CompiledTm {
        tm: tm.clone(),
        program,
        database,
        tape_cells: cells,
    }
}

/// The paper's `M_λ` for one instruction. `x` ranges over pairs of rows
/// from `M × M`: attributes 1–4 are the head row `[t, j, s, q]` and 5–8 a
/// second row `[t, i, x, ∘]` at the same time.
fn instruction_expr(q1: &str, s1: Sym, q2: &str, s2: Sym, mv: Move) -> Expr {
    let m = Expr::var("M");
    let x = || Expr::var("x");
    let pairs = m.clone().product(m);
    // Shared guard: first row is the matching head row, second row is a
    // non-head row of the same time stamp.
    let head_guard = Pred::eq(x().attr(4), Expr::lit(state_atom(q1)))
        .and(Pred::eq(x().attr(3), Expr::lit(sym_atom(s1))))
        .and(Pred::eq(x().attr(1), x().attr(5)))
        .and(Pred::eq(x().attr(8), Expr::lit(no_head_atom())));
    let t_next = || succ(x().attr(1));

    match mv {
        Move::Right => {
            // (b) write the head cell, head departs.
            let writes = pairs
                .clone()
                .select(
                    "x",
                    head_guard
                        .clone()
                        .and(Pred::eq(succ(x().attr(2)), x().attr(6))),
                )
                .map(
                    "x",
                    Expr::tuple([
                        t_next(),
                        x().attr(2),
                        Expr::lit(sym_atom(s2)),
                        Expr::lit(no_head_atom()),
                    ]),
                );
            // (c) the head arrives at cell j+1, content unchanged.
            let moves = pairs
                .clone()
                .select(
                    "x",
                    head_guard
                        .clone()
                        .and(Pred::eq(succ(x().attr(2)), x().attr(6))),
                )
                .map(
                    "x",
                    Expr::tuple([
                        t_next(),
                        x().attr(6),
                        x().attr(7),
                        Expr::lit(state_atom(q2)),
                    ]),
                );
            // (a) all other cells copy unchanged.
            let copies = pairs
                .select(
                    "x",
                    head_guard.and(Pred::eq(succ(x().attr(2)), x().attr(6)).not()),
                )
                .map(
                    "x",
                    Expr::tuple([
                        t_next(),
                        x().attr(6),
                        x().attr(7),
                        Expr::lit(no_head_atom()),
                    ]),
                );
            writes.max_union(moves).max_union(copies).dedup()
        }
        Move::Left => {
            // Head arrives at j−1, expressed as i ∪⁺ ⟦•⟧ = j.
            let writes = pairs
                .clone()
                .select(
                    "x",
                    head_guard
                        .clone()
                        .and(Pred::eq(succ(x().attr(6)), x().attr(2))),
                )
                .map(
                    "x",
                    Expr::tuple([
                        t_next(),
                        x().attr(2),
                        Expr::lit(sym_atom(s2)),
                        Expr::lit(no_head_atom()),
                    ]),
                );
            let moves = pairs
                .clone()
                .select(
                    "x",
                    head_guard
                        .clone()
                        .and(Pred::eq(succ(x().attr(6)), x().attr(2))),
                )
                .map(
                    "x",
                    Expr::tuple([
                        t_next(),
                        x().attr(6),
                        x().attr(7),
                        Expr::lit(state_atom(q2)),
                    ]),
                );
            let copies = pairs
                .select(
                    "x",
                    head_guard.and(Pred::eq(succ(x().attr(6)), x().attr(2)).not()),
                )
                .map(
                    "x",
                    Expr::tuple([
                        t_next(),
                        x().attr(6),
                        x().attr(7),
                        Expr::lit(no_head_atom()),
                    ]),
                );
            writes.max_union(moves).max_union(copies).dedup()
        }
        Move::Stay => {
            // The head row updates in place; selection needs only M.
            let head_only = Pred::eq(x().attr(4), Expr::lit(state_atom(q1)))
                .and(Pred::eq(x().attr(3), Expr::lit(sym_atom(s1))));
            let writes = Expr::var("M").select("x", head_only).map(
                "x",
                Expr::tuple([
                    t_next(),
                    x().attr(2),
                    Expr::lit(sym_atom(s2)),
                    Expr::lit(state_atom(q2)),
                ]),
            );
            let copies = pairs.select("x", head_guard).map(
                "x",
                Expr::tuple([
                    t_next(),
                    x().attr(6),
                    x().attr(7),
                    Expr::lit(no_head_atom()),
                ]),
            );
            writes.max_union(copies).dedup()
        }
    }
}

/// The paper's φ₃ acceptance test: the result of `program` has a row in
/// the accepting state — nonempty iff the machine accepted.
pub fn accept_expr(compiled: &CompiledTm) -> Expr {
    compiled.program.clone().select(
        "x",
        Pred::eq(
            Expr::var("x").attr(4),
            Expr::lit(state_atom(&compiled.tm.accepting)),
        ),
    )
}

impl CompiledTm {
    /// Evaluate the fixpoint and decode the final configuration.
    pub fn run(&self, limits: Limits) -> Result<BagRun, BagRunError> {
        let mut evaluator = Evaluator::new(&self.database, limits);
        let rows = evaluator
            .eval_bag(&self.program)
            .map_err(BagRunError::Eval)?;
        let configs = decode_rows(&rows, self.tape_cells).map_err(BagRunError::Decode)?;
        let final_config = configs
            .last()
            .cloned()
            .ok_or(BagRunError::Decode(DecodeError::Empty))?;
        let accepted = final_config
            .state
            .as_deref()
            .is_some_and(|q| q == &*self.tm.accepting);
        Ok(BagRun {
            rows,
            configs,
            final_config,
            accepted,
        })
    }

    /// Check the algebraic trace cell-by-cell against the direct
    /// simulator's run.
    pub fn agrees_with(&self, run: &Run, bag_run: &BagRun) -> bool {
        if bag_run.configs.len() != run.trace.len() {
            return false;
        }
        bag_run.configs.iter().zip(&run.trace).all(|(dec, cfg)| {
            dec.tape[..cfg.tape.len()] == cfg.tape[..]
                && dec.head == Some(cfg.head)
                && dec.state.as_deref() == Some(&*cfg.state)
        })
    }
}

/// The outcome of running a compiled machine.
pub struct BagRun {
    /// All fixpoint rows (every timestamp).
    pub rows: Bag,
    /// Decoded configurations, time 0 first.
    pub configs: Vec<DecodedConfig>,
    /// The configuration with the highest time stamp.
    pub final_config: DecodedConfig,
    /// `true` iff the final state is accepting.
    pub accepted: bool,
}

/// Errors from running a compiled machine.
#[derive(Debug)]
pub enum BagRunError {
    /// The algebra evaluation failed (budget or typing).
    Eval(EvalError),
    /// The fixpoint rows did not decode to configurations.
    Decode(DecodeError),
}

impl fmt::Display for BagRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BagRunError::Eval(e) => write!(f, "evaluation failed: {e}"),
            BagRunError::Decode(e) => write!(f, "decoding failed: {e}"),
        }
    }
}

impl std::error::Error for BagRunError {}

/// Decode fixpoint rows into the per-time configurations.
pub fn decode_rows(rows: &Bag, cells: usize) -> Result<Vec<DecodedConfig>, DecodeError> {
    use std::collections::BTreeMap;
    let mut by_time: BTreeMap<u64, BTreeMap<u64, (Sym, Option<String>)>> = BTreeMap::new();
    for (row, _) in rows.iter() {
        let fields = row
            .as_tuple()
            .filter(|f| f.len() == 4)
            .ok_or_else(|| DecodeError::MalformedRow(row.to_string()))?;
        let t = fields[0]
            .as_bag()
            .and_then(|b| b.cardinality().to_u64())
            .ok_or_else(|| DecodeError::MalformedRow(row.to_string()))?;
        let p = fields[1]
            .as_bag()
            .and_then(|b| b.cardinality().to_u64())
            .ok_or_else(|| DecodeError::MalformedRow(row.to_string()))?;
        let sym = match &fields[2] {
            Value::Atom(Atom::Str(s)) if s.starts_with("s:") => s
                .chars()
                .nth(2)
                .ok_or_else(|| DecodeError::MalformedRow(row.to_string()))?,
            _ => return Err(DecodeError::MalformedRow(row.to_string())),
        };
        let state = match &fields[3] {
            Value::Atom(Atom::Str(s)) if s.starts_with("q:") => Some(s[2..].to_owned()),
            Value::Atom(Atom::Str(s)) if &**s == NO_HEAD => None,
            _ => return Err(DecodeError::MalformedRow(row.to_string())),
        };
        by_time.entry(t).or_default().insert(p, (sym, state));
    }
    if by_time.is_empty() {
        return Err(DecodeError::Empty);
    }
    let mut configs = Vec::with_capacity(by_time.len());
    for (time, cells_map) in by_time {
        let mut tape = Vec::with_capacity(cells);
        let mut head = None;
        let mut state = None;
        for pos in 1..=cells as u64 {
            match cells_map.get(&pos) {
                Some((sym, q)) => {
                    tape.push(*sym);
                    if let Some(q) = q {
                        head = Some(pos as usize - 1);
                        state = Some(q.clone());
                    }
                }
                None => tape.push('?'),
            }
        }
        configs.push(DecodedConfig {
            time,
            tape,
            head,
            state,
        });
    }
    Ok(configs)
}

/// Convenience: the multiplicity-free row count the fixpoint produced for
/// a run of `t` steps on `c` cells should be `(t+1)·c`.
pub fn expected_row_count(steps: usize, cells: usize) -> Natural {
    Natural::from(((steps + 1) * cells) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tm::{flip_machine, parity_machine, unary_successor_machine, zigzag_machine};

    fn run_both(tm: &Tm, input: &[Sym], padding: usize) -> (Run, BagRun) {
        let direct = tm.run(input, padding, 1000).expect("direct run");
        let compiled = compile(tm, input, padding);
        let bag_run = compiled.run(Limits::default()).expect("bag run");
        (direct, bag_run)
    }

    #[test]
    fn flip_machine_agrees_with_simulator() {
        let tm = flip_machine();
        let input = ['0', '1', '0'];
        let (direct, bag_run) = run_both(&tm, &input, 2);
        let compiled = compile(&tm, &input, 2);
        assert!(compiled.agrees_with(&direct, &bag_run));
        assert!(bag_run.accepted);
        assert_eq!(&bag_run.final_config.tape[..3], &['1', '0', '1']);
    }

    #[test]
    fn parity_machine_agrees_and_decides() {
        let tm = parity_machine();
        for n in 0..5 {
            let input: Vec<Sym> = std::iter::repeat_n('1', n).collect();
            let (direct, bag_run) = run_both(&tm, &input, 2);
            assert_eq!(bag_run.accepted, direct.accepted, "acceptance at n={n}");
            assert_eq!(bag_run.accepted, n % 2 == 0);
        }
    }

    #[test]
    fn unary_successor_writes_through_algebra() {
        let tm = unary_successor_machine();
        let (direct, bag_run) = run_both(&tm, &['1', '1', '1'], 2);
        assert!(bag_run.accepted);
        assert_eq!(bag_run.final_config.tape[..4], ['1', '1', '1', '1']);
        assert_eq!(
            bag_run.configs.len(),
            direct.trace.len(),
            "one decoded configuration per simulator step"
        );
    }

    #[test]
    fn left_moves_compile_correctly() {
        let tm = zigzag_machine();
        let (direct, bag_run) = run_both(&tm, &[], 3);
        let compiled = compile(&tm, &[], 3);
        assert!(compiled.agrees_with(&direct, &bag_run));
        assert_eq!(bag_run.final_config.head, Some(0));
        assert_eq!(bag_run.final_config.state.as_deref(), Some("acc"));
    }

    #[test]
    fn accept_expr_detects_acceptance() {
        let tm = parity_machine();
        let even = compile(&tm, &['1', '1'], 2);
        let rows = balg_core::eval::eval_bag(&accept_expr(&even), &even.database).unwrap();
        assert!(!rows.is_empty());
        let odd = compile(&tm, &['1'], 2);
        let rows = balg_core::eval::eval_bag(&accept_expr(&odd), &odd.database).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn row_count_matches_formula() {
        let tm = flip_machine();
        let input = ['0', '1'];
        let (direct, bag_run) = run_both(&tm, &input, 1);
        let cells = input.len() + 1;
        assert_eq!(
            bag_run.rows.cardinality(),
            expected_row_count(direct.steps, cells)
        );
        // Every row has multiplicity one: the encoding is duplicate-free.
        assert!(bag_run.rows.iter().all(|(_, m)| m.is_one()));
    }

    #[test]
    fn program_is_balg2_plus_ifp() {
        use balg_core::schema::Schema;
        use balg_core::typecheck::check;
        use balg_core::types::Type;
        let tm = flip_machine();
        let compiled = compile(&tm, &['0'], 1);
        let row_ty = Type::Tuple(vec![
            Type::bag(Type::Atom),
            Type::bag(Type::Atom),
            Type::Atom,
            Type::Atom,
        ]);
        let schema = Schema::new().with("C0", Type::bag(row_ty));
        let analysis = check(&compiled.program, &schema).unwrap();
        assert!(analysis.uses_ifp);
        assert_eq!(analysis.max_bag_nesting, 2); // BALG² + IFP (Thm 6.6, k ≥ 2)
        assert!(!analysis.uses_powerset);
    }

    #[test]
    fn fixpoint_terminates_on_halted_machine() {
        // A machine with no applicable transition is at fixpoint at once.
        let tm = Tm::new('_', "q", "f", &[("x", '0', "x", '0', Move::Stay)]);
        let compiled = compile(&tm, &['_'], 0);
        let bag_run = compiled.run(Limits::default()).unwrap();
        assert_eq!(bag_run.configs.len(), 1);
        assert!(!bag_run.accepted);
    }

    #[test]
    fn decode_rejects_malformed_rows() {
        let bag = Bag::singleton(Value::sym("nope"));
        assert!(matches!(
            decode_rows(&bag, 1),
            Err(DecodeError::MalformedRow(_))
        ));
    }
}
