//! Counter (Minsky) machines and their bag simulation.
//!
//! Section 2 notes that relational machines extended with counters
//! (\[GO93\]) relate closely to bags (\[GM95\]): *a bag of `n` identical
//! elements is a counter at value `n`*. This module makes that concrete —
//! a two-operation counter machine (increment; decrement-or-branch-on-
//! zero) is compiled to a BALG + IFP program in which every register is an
//! integer bag, increment is `∪⁺ ⟦a⟧`, decrement is `− ⟦a⟧`, and the zero
//! test is bag emptiness (`α = ⟦⟧`). Configurations accumulate under a
//! time stamp exactly as in the Theorem 6.6 Turing-machine compilation.

use std::fmt;

use balg_core::bag::Bag;
use balg_core::derived::{decode_int, UNIT_ATOM};
use balg_core::eval::{EvalError, Evaluator, Limits};
use balg_core::expr::{Expr, Pred};
use balg_core::schema::Database;
use balg_core::value::Value;

/// A register index.
pub type Reg = usize;

/// One counter-machine instruction.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CounterInstr {
    /// `r += 1; goto next`.
    Inc {
        /// Register.
        reg: Reg,
        /// Next program counter.
        next: usize,
    },
    /// `if r == 0 { goto on_zero } else { r -= 1; goto next }`.
    DecJz {
        /// Register.
        reg: Reg,
        /// Next pc after a successful decrement.
        next: usize,
        /// Target when the register is zero.
        on_zero: usize,
    },
    /// Stop.
    Halt,
}

/// A counter machine: a program over `registers` counters; pc 0 starts.
#[derive(Clone, Debug)]
pub struct CounterMachine {
    /// Number of registers.
    pub registers: usize,
    /// The program; `Halt` or a pc past the end stops the machine.
    pub program: Vec<CounterInstr>,
}

/// A direct run's outcome.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CounterRun {
    /// Final register values.
    pub registers: Vec<u64>,
    /// Steps taken.
    pub steps: usize,
}

/// Why a direct run failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CounterError {
    /// Step budget exhausted.
    StepBudget(usize),
    /// An instruction referenced a register out of range.
    BadRegister(Reg),
}

impl fmt::Display for CounterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterError::StepBudget(n) => write!(f, "did not halt within {n} steps"),
            CounterError::BadRegister(r) => write!(f, "register r{r} out of range"),
        }
    }
}

impl std::error::Error for CounterError {}

impl CounterMachine {
    /// Run directly on the given initial register values.
    pub fn run(&self, initial: &[u64], max_steps: usize) -> Result<CounterRun, CounterError> {
        let mut registers: Vec<u64> = initial.to_vec();
        registers.resize(self.registers, 0);
        let mut pc = 0usize;
        for step in 0..max_steps {
            match self.program.get(pc) {
                None | Some(CounterInstr::Halt) => {
                    return Ok(CounterRun {
                        registers,
                        steps: step,
                    });
                }
                Some(CounterInstr::Inc { reg, next }) => {
                    let slot = registers
                        .get_mut(*reg)
                        .ok_or(CounterError::BadRegister(*reg))?;
                    *slot += 1;
                    pc = *next;
                }
                Some(CounterInstr::DecJz { reg, next, on_zero }) => {
                    let slot = registers
                        .get_mut(*reg)
                        .ok_or(CounterError::BadRegister(*reg))?;
                    if *slot == 0 {
                        pc = *on_zero;
                    } else {
                        *slot -= 1;
                        pc = *next;
                    }
                }
            }
        }
        Err(CounterError::StepBudget(max_steps))
    }
}

fn pc_atom(pc: usize) -> Value {
    Value::sym(&format!("pc:{pc}"))
}

fn time_bag(t: u64) -> Value {
    Value::Bag(Bag::repeated(Value::sym("•"), t))
}

fn register_bag(v: u64) -> Value {
    Value::Bag(Bag::repeated(Value::tuple([Value::sym(UNIT_ATOM)]), v))
}

fn one() -> Expr {
    Expr::Lit(Value::Bag(Bag::singleton(Value::tuple([Value::sym(
        UNIT_ATOM,
    )]))))
}

fn tick() -> Expr {
    Expr::Lit(Value::Bag(Bag::singleton(Value::sym("•"))))
}

/// A counter machine compiled to BALG + IFP. Rows are
/// `[t, pc, r₀, …, r_{k−1}]` with `t` a counter-atom bag, `pc` an atom,
/// and every register an integer bag.
pub struct CompiledCounterMachine {
    /// The machine.
    pub machine: CounterMachine,
    /// The IFP program.
    pub program: Expr,
    /// Database binding `C0` to the initial configuration row.
    pub database: Database,
}

/// Compile `machine` on the given initial register values.
pub fn compile_counter(machine: &CounterMachine, initial: &[u64]) -> CompiledCounterMachine {
    let k = machine.registers;
    let mut row = vec![time_bag(0), pc_atom(0)];
    for r in 0..k {
        row.push(register_bag(initial.get(r).copied().unwrap_or(0)));
    }
    let database = Database::new().with("C0", Bag::singleton(Value::Tuple(row.into())));

    let x = || Expr::var("x");
    let reg_attr = |r: Reg| x().attr(r + 3); // 1 = time, 2 = pc
                                             // Build one MAP per instruction outcome.
    let mut body: Option<Expr> = None;
    let mut add_rule = |pred: Pred, build: Box<dyn Fn() -> Vec<Expr>>| {
        let rule = Expr::var("M")
            .select("x", pred)
            .map("x", Expr::Tuple(build()))
            .dedup();
        body = Some(match body.take() {
            None => rule,
            Some(acc) => acc.max_union(rule),
        });
    };
    for (pc, instr) in machine.program.iter().enumerate() {
        let at_pc = Pred::eq(x().attr(2), Expr::lit(pc_atom(pc)));
        match instr {
            CounterInstr::Halt => {}
            CounterInstr::Inc { reg, next } => {
                let (reg, next) = (*reg, *next);
                add_rule(
                    at_pc,
                    Box::new(move |/* build row */| {
                        let mut fields =
                            vec![x().attr(1).additive_union(tick()), Expr::lit(pc_atom(next))];
                        for r in 0..k {
                            if r == reg {
                                fields.push(reg_attr(r).additive_union(one()));
                            } else {
                                fields.push(reg_attr(r));
                            }
                        }
                        fields
                    }),
                );
            }
            CounterInstr::DecJz { reg, next, on_zero } => {
                let (reg, next, on_zero) = (*reg, *next, *on_zero);
                // Nonzero branch: the bag − ⟦a⟧ decrement.
                let nonzero = at_pc
                    .clone()
                    .and(Pred::eq(reg_attr(reg), Expr::empty_bag()).not());
                add_rule(
                    nonzero,
                    Box::new(move || {
                        let mut fields =
                            vec![x().attr(1).additive_union(tick()), Expr::lit(pc_atom(next))];
                        for r in 0..k {
                            if r == reg {
                                fields.push(reg_attr(r).subtract(one()));
                            } else {
                                fields.push(reg_attr(r));
                            }
                        }
                        fields
                    }),
                );
                // Zero branch: emptiness is the zero test.
                let zero = at_pc.and(Pred::eq(reg_attr(reg), Expr::empty_bag()));
                add_rule(
                    zero,
                    Box::new(move || {
                        let mut fields = vec![
                            x().attr(1).additive_union(tick()),
                            Expr::lit(pc_atom(on_zero)),
                        ];
                        for r in 0..k {
                            fields.push(reg_attr(r));
                        }
                        fields
                    }),
                );
            }
        }
    }
    let body = body.unwrap_or_else(|| Expr::var("M"));
    let program = Expr::var("C0").ifp("M", body);
    CompiledCounterMachine {
        machine: machine.clone(),
        program,
        database,
    }
}

/// Errors from running a compiled counter machine.
#[derive(Debug)]
pub enum CounterBagError {
    /// Evaluation failed (budget, shape).
    Eval(EvalError),
    /// The fixpoint rows did not decode.
    Decode(String),
}

impl fmt::Display for CounterBagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterBagError::Eval(e) => write!(f, "evaluation failed: {e}"),
            CounterBagError::Decode(what) => write!(f, "decode failed: {what}"),
        }
    }
}

impl std::error::Error for CounterBagError {}

impl CompiledCounterMachine {
    /// Run the fixpoint and decode the final register values.
    pub fn run(&self, limits: Limits) -> Result<CounterRun, CounterBagError> {
        let mut evaluator = Evaluator::new(&self.database, limits);
        let rows = evaluator
            .eval_bag(&self.program)
            .map_err(CounterBagError::Eval)?;
        let mut best: Option<(u64, Vec<u64>)> = None;
        let mut steps = 0u64;
        for (row, _) in rows.iter() {
            let fields = row
                .as_tuple()
                .ok_or_else(|| CounterBagError::Decode(row.to_string()))?;
            let t = fields
                .first()
                .and_then(Value::as_bag)
                .and_then(|b| b.cardinality().to_u64())
                .ok_or_else(|| CounterBagError::Decode(row.to_string()))?;
            let registers = fields[2..]
                .iter()
                .map(|f| decode_int(f).and_then(|n| n.to_u64()))
                .collect::<Option<Vec<u64>>>()
                .ok_or_else(|| CounterBagError::Decode(row.to_string()))?;
            steps = steps.max(t);
            if best.as_ref().is_none_or(|(bt, _)| t > *bt) {
                best = Some((t, registers));
            }
        }
        let (t, registers) = best.ok_or_else(|| CounterBagError::Decode("no rows".into()))?;
        debug_assert_eq!(t, steps);
        Ok(CounterRun {
            registers,
            steps: t as usize,
        })
    }
}

/// `r0 := r0 + r1; r1 := 0` — the classic transfer-addition loop.
pub fn addition_machine() -> CounterMachine {
    CounterMachine {
        registers: 2,
        program: vec![
            // 0: if r1 == 0 goto 3 else r1 -= 1
            CounterInstr::DecJz {
                reg: 1,
                next: 1,
                on_zero: 3,
            },
            // 1: r0 += 1
            CounterInstr::Inc { reg: 0, next: 0 },
            // 2: (unused)
            CounterInstr::Halt,
            // 3: halt
            CounterInstr::Halt,
        ],
    }
}

/// `r0 := 2 · r0` via a temporary: move r0 into r1 doubled, then back.
pub fn doubling_machine() -> CounterMachine {
    CounterMachine {
        registers: 2,
        program: vec![
            // 0: if r0 == 0 goto 4 else r0 -= 1
            CounterInstr::DecJz {
                reg: 0,
                next: 1,
                on_zero: 4,
            },
            // 1,2: r1 += 2
            CounterInstr::Inc { reg: 1, next: 2 },
            CounterInstr::Inc { reg: 1, next: 0 },
            // 3: unused
            CounterInstr::Halt,
            // 4: if r1 == 0 halt else move back
            CounterInstr::DecJz {
                reg: 1,
                next: 5,
                on_zero: 6,
            },
            // 5: r0 += 1
            CounterInstr::Inc { reg: 0, next: 4 },
            // 6: halt
            CounterInstr::Halt,
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_direct() {
        let run = addition_machine().run(&[3, 4], 100).unwrap();
        assert_eq!(run.registers, vec![7, 0]);
    }

    #[test]
    fn doubling_direct() {
        let run = doubling_machine().run(&[5], 100).unwrap();
        assert_eq!(run.registers[0], 10);
    }

    #[test]
    fn addition_via_bags_agrees() {
        for (a, b) in [(0u64, 0u64), (3, 4), (5, 0), (0, 6)] {
            let machine = addition_machine();
            let direct = machine.run(&[a, b], 200).unwrap();
            let compiled = compile_counter(&machine, &[a, b]);
            let via_bags = compiled.run(Limits::default()).unwrap();
            assert_eq!(via_bags.registers, direct.registers, "at ({a},{b})");
            assert_eq!(via_bags.steps, direct.steps);
        }
    }

    #[test]
    fn doubling_via_bags_agrees() {
        let machine = doubling_machine();
        let direct = machine.run(&[4], 200).unwrap();
        let compiled = compile_counter(&machine, &[4]);
        let via_bags = compiled.run(Limits::default()).unwrap();
        assert_eq!(via_bags.registers, direct.registers);
        assert_eq!(via_bags.registers[0], 8);
    }

    #[test]
    fn zero_test_is_bag_emptiness() {
        // A machine that branches immediately on r0 == 0.
        let machine = CounterMachine {
            registers: 1,
            program: vec![
                CounterInstr::DecJz {
                    reg: 0,
                    next: 1,
                    on_zero: 2,
                },
                CounterInstr::Inc { reg: 0, next: 2 },
                CounterInstr::Halt,
            ],
        };
        // r0 = 0: dec branches to halt → stays 0, one step.
        let compiled = compile_counter(&machine, &[0]);
        let run = compiled.run(Limits::default()).unwrap();
        assert_eq!(run.registers, vec![0]);
        assert_eq!(run.steps, 1);
        // r0 = 1: dec to 0 then inc → 1, two steps.
        let compiled = compile_counter(&machine, &[1]);
        let run = compiled.run(Limits::default()).unwrap();
        assert_eq!(run.registers, vec![1]);
        assert_eq!(run.steps, 2);
    }

    #[test]
    fn budget_errors_reported() {
        // An infinite loop: inc forever.
        let machine = CounterMachine {
            registers: 1,
            program: vec![CounterInstr::Inc { reg: 0, next: 0 }],
        };
        assert!(matches!(
            machine.run(&[0], 50),
            Err(CounterError::StepBudget(50))
        ));
        let compiled = compile_counter(&machine, &[0]);
        let limits = Limits {
            max_ifp_iterations: 16,
            ..Limits::default()
        };
        assert!(matches!(
            compiled.run(limits),
            Err(CounterBagError::Eval(EvalError::IfpLimit(_)))
        ));
    }

    #[test]
    fn compiled_program_is_flat_plus_ifp() {
        use balg_core::schema::Schema;
        use balg_core::typecheck::check;
        use balg_core::types::Type;
        let compiled = compile_counter(&addition_machine(), &[1, 1]);
        let row_ty = Type::Tuple(vec![
            Type::bag(Type::Atom),
            Type::Atom,
            Type::bag(Type::atom_tuple(1)),
            Type::bag(Type::atom_tuple(1)),
        ]);
        let schema = Schema::new().with("C0", Type::bag(row_ty));
        let analysis = check(&compiled.program, &schema).unwrap();
        assert!(analysis.uses_ifp);
        assert!(!analysis.uses_powerset);
        assert_eq!(analysis.max_bag_nesting, 2);
    }
}
