//! Deterministic Turing machines (the Section 6 substrate).
//!
//! Theorems 6.1 and 6.6 encode TM computations in bags; this module is the
//! ground truth those encodings are checked against: a small, total,
//! step-bounded simulator with an explicit configuration trace.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A tape symbol.
pub type Sym = char;

/// A machine state name.
pub type State = Arc<str>;

/// A head move.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Move {
    /// Move the head left.
    Left,
    /// Move the head right.
    Right,
    /// Keep the head in place (not used by the paper's machines, but
    /// convenient for halting transitions).
    Stay,
}

/// A deterministic Turing machine.
#[derive(Clone, Debug)]
pub struct Tm {
    /// The blank symbol.
    pub blank: Sym,
    /// The initial state.
    pub initial: State,
    /// The accepting (final) state `q_f`; the machine halts whenever no
    /// transition applies, and *accepts* iff it halts in this state.
    pub accepting: State,
    /// The transition function `δ(state, symbol) = (state′, symbol′, move)`.
    pub transitions: BTreeMap<(State, Sym), (State, Sym, Move)>,
}

/// One machine configuration: state, head position, tape contents.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Config {
    /// The current state.
    pub state: State,
    /// 0-based head position.
    pub head: usize,
    /// Tape cells (fixed length; see [`Tm::run`]).
    pub tape: Vec<Sym>,
}

/// The result of running a machine.
#[derive(Clone, Debug)]
pub struct Run {
    /// `true` iff the machine halted in the accepting state.
    pub accepted: bool,
    /// Steps taken until halting.
    pub steps: usize,
    /// The full configuration trace, `trace[t]` being the configuration
    /// at time `t` (so `trace.len() == steps + 1`).
    pub trace: Vec<Config>,
}

impl Run {
    /// The final tape.
    pub fn final_tape(&self) -> &[Sym] {
        &self.trace.last().expect("nonempty trace").tape
    }
}

/// Why a run failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TmError {
    /// The step budget was exhausted before halting.
    StepBudget(usize),
    /// The head fell off the left end of the tape.
    FellOffLeft {
        /// The step at which it happened.
        at_step: usize,
    },
    /// The head fell off the (pre-padded) right end of the tape.
    FellOffRight {
        /// The step at which it happened.
        at_step: usize,
    },
}

impl fmt::Display for TmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmError::StepBudget(n) => write!(f, "machine did not halt within {n} steps"),
            TmError::FellOffLeft { at_step } => {
                write!(f, "head fell off the left at step {at_step}")
            }
            TmError::FellOffRight { at_step } => {
                write!(f, "head fell off the padded tape at step {at_step}")
            }
        }
    }
}

impl std::error::Error for TmError {}

impl Tm {
    /// Build a machine from transition 4-tuples
    /// `(state, read, state′, write, move)`.
    pub fn new(
        blank: Sym,
        initial: &str,
        accepting: &str,
        transitions: &[(&str, Sym, &str, Sym, Move)],
    ) -> Tm {
        Tm {
            blank,
            initial: Arc::from(initial),
            accepting: Arc::from(accepting),
            transitions: transitions
                .iter()
                .map(|(q, s, q2, s2, m)| ((Arc::from(*q), *s), (Arc::from(*q2), *s2, *m)))
                .collect(),
        }
    }

    /// All state names, in order, including initial and accepting.
    pub fn states(&self) -> Vec<State> {
        let mut out = vec![self.initial.clone(), self.accepting.clone()];
        for ((q, _), (q2, _, _)) in &self.transitions {
            out.push(q.clone());
            out.push(q2.clone());
        }
        out.sort();
        out.dedup();
        out
    }

    /// All tape symbols, including the blank.
    pub fn symbols(&self) -> Vec<Sym> {
        let mut out = vec![self.blank];
        for ((_, s), (_, s2, _)) in &self.transitions {
            out.push(*s);
            out.push(*s2);
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Run on `input`, with the tape pre-padded to
    /// `input.len() + padding` blanks, for at most `max_steps` steps.
    ///
    /// The fixed-length tape matches the Theorem 6.1/6.6 encodings, where
    /// the represented tape portion is bounded a priori by the space
    /// budget of the simulated complexity class.
    pub fn run(&self, input: &[Sym], padding: usize, max_steps: usize) -> Result<Run, TmError> {
        let mut tape: Vec<Sym> = input.to_vec();
        tape.resize(input.len() + padding, self.blank);
        if tape.is_empty() {
            tape.push(self.blank);
        }
        let mut config = Config {
            state: self.initial.clone(),
            head: 0,
            tape,
        };
        let mut trace = vec![config.clone()];
        for step in 0..max_steps {
            let key = (config.state.clone(), config.tape[config.head]);
            let Some((state2, write, mv)) = self.transitions.get(&key) else {
                // Halted.
                return Ok(Run {
                    accepted: config.state == self.accepting,
                    steps: step,
                    trace,
                });
            };
            config.tape[config.head] = *write;
            config.state = state2.clone();
            match mv {
                Move::Left => {
                    config.head = config
                        .head
                        .checked_sub(1)
                        .ok_or(TmError::FellOffLeft { at_step: step })?;
                }
                Move::Right => {
                    config.head += 1;
                    if config.head >= config.tape.len() {
                        return Err(TmError::FellOffRight { at_step: step });
                    }
                }
                Move::Stay => {}
            }
            trace.push(config.clone());
        }
        Err(TmError::StepBudget(max_steps))
    }
}

/// Sample machine: flips `0 ↔ 1` left-to-right and accepts at the first
/// blank.
pub fn flip_machine() -> Tm {
    Tm::new(
        '_',
        "s",
        "f",
        &[
            ("s", '0', "s", '1', Move::Right),
            ("s", '1', "s", '0', Move::Right),
            ("s", '_', "f", '_', Move::Stay),
        ],
    )
}

/// Sample machine: accepts iff the number of `1`s on the (unary) input is
/// even — the `bag-even` query of Proposition 4.5 as a machine.
pub fn parity_machine() -> Tm {
    Tm::new(
        '_',
        "even",
        "acc",
        &[
            ("even", '1', "odd", '1', Move::Right),
            ("odd", '1', "even", '1', Move::Right),
            ("even", '_', "acc", '_', Move::Stay),
            // odd + blank: halt in "odd" (reject).
        ],
    )
}

/// Sample machine: replaces the unary input `1ⁿ` by `1^{n+1}` (successor)
/// and accepts.
pub fn unary_successor_machine() -> Tm {
    Tm::new(
        '_',
        "scan",
        "acc",
        &[
            ("scan", '1', "scan", '1', Move::Right),
            ("scan", '_', "acc", '1', Move::Stay),
        ],
    )
}

/// Sample machine: a 3-step zig-zag exercising **left** moves —
/// writes `ab` then walks back and accepts on the first cell.
pub fn zigzag_machine() -> Tm {
    Tm::new(
        '_',
        "q0",
        "acc",
        &[
            ("q0", '_', "q1", 'a', Move::Right),
            ("q1", '_', "q2", 'b', Move::Left),
            ("q2", 'a', "acc", 'a', Move::Stay),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_machine_flips() {
        let run = flip_machine().run(&['0', '1', '1'], 2, 100).unwrap();
        assert!(run.accepted);
        assert_eq!(&run.final_tape()[..3], &['1', '0', '0']);
        assert_eq!(run.steps, 4); // 3 flips + halt transition
    }

    #[test]
    fn parity_machine_decides_parity() {
        for n in 0..7 {
            let input: Vec<Sym> = std::iter::repeat_n('1', n).collect();
            let run = parity_machine().run(&input, 2, 100).unwrap();
            assert_eq!(run.accepted, n % 2 == 0, "parity wrong at n={n}");
        }
    }

    #[test]
    fn unary_successor() {
        let run = unary_successor_machine().run(&['1', '1'], 2, 100).unwrap();
        assert!(run.accepted);
        assert_eq!(&run.final_tape()[..3], &['1', '1', '1']);
    }

    #[test]
    fn zigzag_moves_left() {
        let run = zigzag_machine().run(&[], 3, 100).unwrap();
        assert!(run.accepted);
        assert_eq!(&run.final_tape()[..2], &['a', 'b']);
        assert_eq!(run.trace.last().unwrap().head, 0);
    }

    #[test]
    fn step_budget_enforced() {
        // A machine that loops forever in place.
        let looper = Tm::new('_', "q", "f", &[("q", '_', "q", '_', Move::Stay)]);
        assert!(matches!(
            looper.run(&[], 1, 50),
            Err(TmError::StepBudget(50))
        ));
    }

    #[test]
    fn falling_off_right_detected() {
        let runner = Tm::new('_', "q", "f", &[("q", '_', "q", '_', Move::Right)]);
        assert!(matches!(
            runner.run(&[], 3, 100),
            Err(TmError::FellOffRight { .. })
        ));
    }

    #[test]
    fn falling_off_left_detected() {
        let lefty = Tm::new('_', "q", "f", &[("q", '_', "q", '_', Move::Left)]);
        assert!(matches!(
            lefty.run(&[], 1, 10),
            Err(TmError::FellOffLeft { at_step: 0 })
        ));
    }

    #[test]
    fn states_and_symbols_enumerated() {
        let tm = parity_machine();
        let states = tm.states();
        assert!(states.iter().any(|s| &**s == "even"));
        assert!(states.iter().any(|s| &**s == "acc"));
        assert_eq!(tm.symbols(), vec!['1', '_']);
    }

    #[test]
    fn trace_is_complete() {
        let run = flip_machine().run(&['1'], 2, 100).unwrap();
        assert_eq!(run.trace.len(), run.steps + 1);
        assert_eq!(run.trace[0].state, Arc::<str>::from("s"));
        assert_eq!(run.trace[0].head, 0);
    }
}
