//! Quickstart: build bags, run every operator, inspect multiplicities.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use balg::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Bags carry exact multiplicities -------------------------------
    let mut inventory = Bag::new();
    inventory.insert_with_multiplicity(Value::tuple([Value::sym("bolt")]), Natural::from(120u64));
    inventory.insert_with_multiplicity(Value::tuple([Value::sym("nut")]), Natural::from(120u64));
    inventory.insert_with_multiplicity(Value::tuple([Value::sym("washer")]), Natural::from(45u64));
    let mut shipment = Bag::new();
    shipment.insert_with_multiplicity(Value::tuple([Value::sym("bolt")]), Natural::from(30u64));
    shipment.insert_with_multiplicity(Value::tuple([Value::sym("gear")]), Natural::from(5u64));

    println!("inventory = {inventory}");
    println!("shipment  = {shipment}");

    let db = Database::new()
        .with("inv", inventory)
        .with("ship", shipment);

    // --- The four unions behave differently on duplicates --------------
    let additive = eval_bag(&Expr::var("inv").additive_union(Expr::var("ship")), &db)?;
    let maximal = eval_bag(&Expr::var("inv").max_union(Expr::var("ship")), &db)?;
    let common = eval_bag(&Expr::var("inv").intersect(Expr::var("ship")), &db)?;
    let after = eval_bag(&Expr::var("inv").subtract(Expr::var("ship")), &db)?;
    println!("\ninv ∪⁺ ship = {additive}");
    println!("inv ∪  ship = {maximal}");
    println!("inv ∩  ship = {common}");
    println!("inv −  ship = {after}");

    // --- Counting is native: count/sum as algebra expressions ----------
    let total = eval_bag(&balg::core::derived::count(Expr::var("inv")), &db)?;
    println!(
        "\ncount(inv) = {} (as the integer bag ⟦[a]ⁿ⟧)",
        balg::core::derived::decode_int(&Value::Bag(total)).unwrap()
    );

    // --- The powerset and its budget ------------------------------------
    let small = Bag::repeated(Value::sym("x"), 3u64);
    println!("\nP({small}) = {}", small.powerset(1 << 10)?);
    println!("P_b({small}) = {}", small.powerbag(1 << 10)?);
    // A powerset that would explode is rejected up front, never OOM:
    let huge = Bag::repeated(Value::sym("x"), 1_000_000u64);
    match huge.powerset(1 << 10) {
        Err(BagError::TooLarge { predicted, limit }) => {
            println!("P(x^1000000) rejected: {predicted} subbags > budget {limit}");
        }
        other => println!("unexpected: {other:?}"),
    }

    // --- Static analysis: which fragment is a query in? ----------------
    let schema = Schema::new()
        .with("inv", Type::relation(1))
        .with("ship", Type::relation(1));
    let q1 = Expr::var("inv").subtract(Expr::var("ship"));
    let q2 = Expr::var("inv").powerset().destroy();
    for (name, q) in [("inv − ship", q1), ("δ(P(inv))", q2)] {
        let analysis = check(&q, &schema)?;
        println!(
            "\n{name}: type {}, BALG level {}, power nesting {}",
            analysis.ty,
            analysis.balg_level(),
            analysis.power_nesting
        );
    }
    Ok(())
}
