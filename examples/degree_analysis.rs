//! Example 4.1 in action: comparing in/out-degrees on a *multigraph* —
//! the query that separates BALG¹ from the relational algebra
//! (Proposition 4.3), because it must count duplicate edges.
//!
//! ```sh
//! cargo run --example degree_analysis
//! ```

use balg::core::derived::in_degree_gt_out_degree;
use balg::core::prelude::*;
use balg::relational::translate::balg1_to_ralg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A road network where parallel roads matter: three lanes into the
    // interchange from the north, two lanes out to the south.
    let mut roads = Bag::new();
    let edge = |from: &str, to: &str| Value::tuple([Value::sym(from), Value::sym(to)]);
    roads.insert_with_multiplicity(edge("north", "hub"), Natural::from(3u64));
    roads.insert_with_multiplicity(edge("hub", "south"), Natural::from(2u64));
    roads.insert_with_multiplicity(edge("south", "hub"), Natural::from(1u64));
    roads.insert_with_multiplicity(edge("hub", "north"), Natural::from(1u64));
    println!("road network (edges with lane counts):\n{roads}\n");

    let db = Database::new().with("G", roads.clone());
    for node in ["hub", "north", "south"] {
        let q = in_degree_gt_out_degree(Expr::var("G"), Value::sym(node));
        let more_incoming = !eval_bag(&q, &db)?.is_empty();
        // Direct count for the narrative.
        let (mut indeg, mut outdeg) = (Natural::zero(), Natural::zero());
        for (e, m) in roads.iter() {
            let fields = e.as_tuple().unwrap();
            if fields[1] == Value::sym(node) {
                indeg += m;
            }
            if fields[0] == Value::sym(node) {
                outdeg += m;
            }
        }
        println!("{node:>6}: in {indeg}, out {outdeg} → algebra says in>out: {more_incoming}");
    }

    // The same query under SET semantics is blind to lane counts:
    // hub has incoming {north,south} and outgoing {south,north} — equal
    // as sets, unbalanced as bags. That is the Proposition 4.3 gap.
    println!("\nset view of hub: 2 in-neighbours vs 2 out-neighbours — balanced!");
    println!("bag view of hub: 4 incoming lanes vs 3 outgoing lanes — congested.");

    // Proposition 4.2's boundary: the translation to RALG refuses the
    // query because it uses bag subtraction.
    let q = in_degree_gt_out_degree(Expr::var("G"), Value::sym("hub"));
    match balg1_to_ralg(&q) {
        Err(e) => println!("\ntranslation to RALG: {e}"),
        Ok(_) => println!("\nunexpected: translated a subtraction query"),
    }
    Ok(())
}
