//! Theorem 6.6, live: compile a Turing machine into a BALG + inflationary
//! fixpoint program, run the fixpoint, and decode the tape back out of
//! the bag of `[time, position, symbol, state]` 4-tuples.
//!
//! ```sh
//! cargo run --example turing_ifp
//! ```

use balg::core::eval::Limits;
use balg::machine::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tm = flip_machine();
    let input = ['0', '1', '1', '0'];
    println!("machine: flip 0↔1 until the first blank, then accept");
    println!("input tape: {}\n", input.iter().collect::<String>());

    // Direct simulation (the ground truth).
    let direct = tm.run(&input, 2, 1000)?;

    // The Theorem 6.6 compilation: one IFP whose body joins the head row
    // of the latest configuration with its neighbours.
    let compiled = compile(&tm, &input, 2);
    println!("compiled program (BALG² + IFP):");
    let rendered = compiled.program.to_string();
    println!(
        "  {}…  ({} AST nodes)\n",
        &rendered[..rendered.len().min(120)],
        compiled.program.size()
    );

    let bag_run = compiled.run(Limits::default())?;
    println!(
        "fixpoint reached: {} configuration rows",
        bag_run.rows.cardinality()
    );
    println!("decoded trace:");
    for config in &bag_run.configs {
        let tape: String = config.tape.iter().collect();
        let head = config
            .head
            .map_or_else(|| "halted".into(), |h| format!("head@{h}"));
        let state = config.state.clone().unwrap_or_else(|| "—".into());
        println!("  t={:<2} tape [{tape}] {head} state {state}", config.time);
    }

    assert!(compiled.agrees_with(&direct, &bag_run), "trace mismatch");
    println!(
        "\nalgebra vs simulator: tapes agree at every step; accepted = {}",
        bag_run.accepted
    );
    println!(
        "final tape: {}",
        bag_run.final_config.tape.iter().collect::<String>()
    );

    // Acceptance is itself a BALG query (the paper's φ₃).
    let accept = accept_expr(&compiled);
    let accepted_rows = balg::core::eval::eval_bag(&accept, &compiled.database)?;
    println!(
        "φ₃ (σ_{{α₄ = q_f}}) over the fixpoint: {} accepting rows",
        accepted_rows.cardinality()
    );
    Ok(())
}
