//! SQL with honest bag semantics: duplicates flow through SELECT, and the
//! aggregates are the paper's Section 3 algebra constructions — `COUNT`
//! via the product-with-⟦[a]⟧ trick, `SUM` via `δ`, `AVG` via the
//! powerset guess.
//!
//! ```sh
//! cargo run --example sql_aggregates
//! ```

use balg::sql::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = Catalog::new()
        .with_table(
            "orders",
            &[("customer", false), ("item", false), ("qty", true)],
        )
        .with_table("vip", &[("customer", false)]);

    let s = |x: &str| SqlValue::Str(x.into());
    let i = SqlValue::Int;
    let db = database_from_rows(
        &catalog,
        &[
            (
                "orders",
                vec![
                    vec![s("ann"), s("apple"), i(3)],
                    vec![s("ann"), s("apple"), i(3)], // the same order twice!
                    vec![s("bob"), s("pear"), i(5)],
                    vec![s("bob"), s("apple"), i(1)],
                    vec![s("cay"), s("plum"), i(7)],
                ],
            ),
            ("vip", vec![vec![s("ann")], vec![s("cay")]]),
        ],
    )?;

    let queries = [
        "SELECT customer FROM orders",
        "SELECT DISTINCT customer FROM orders",
        "SELECT COUNT(*) FROM orders",
        "SELECT COUNT(DISTINCT customer) FROM orders",
        "SELECT SUM(qty) FROM orders",
        "SELECT AVG(qty) FROM orders",
        "SELECT o.item FROM orders o, vip v WHERE o.customer = v.customer",
        "SELECT customer FROM orders WHERE qty >= 3",
        "SELECT customer FROM orders EXCEPT ALL SELECT customer FROM vip",
        "SELECT customer FROM orders INTERSECT SELECT customer FROM vip",
    ];
    for sql in queries {
        let result = run(sql, &catalog, &db)?;
        println!("{sql}");
        let header: Vec<&str> = result.columns.iter().map(|c| c.name.as_str()).collect();
        println!("  columns: {header:?}");
        for (row, mult) in &result.rows {
            let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
            if *mult == 1 {
                println!("  {}", cells.join(" | "));
            } else {
                println!("  {}  ×{mult}", cells.join(" | "));
            }
        }
        println!();
    }

    // The headline: the duplicated order *counts* — SUM sees 19, not 16.
    let sum = run("SELECT SUM(qty) FROM orders", &catalog, &db)?;
    assert_eq!(sum.scalar(), Some(19));
    println!("SUM(qty) = 19: the duplicate row contributed — bag semantics, as in real SQL.");
    Ok(())
}
