//! Section 4's parity query: with an order on the domain, BALG¹ expresses
//! "the cardinality of R is even" — a query that is not first-order
//! definable even with order, and not BALG¹-definable *without* order
//! (Proposition 4.5 / [LW94]).
//!
//! ```sh
//! cargo run --example parity_ordered
//! ```

use balg::core::derived::parity_even_ordered;
use balg::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("σ_{{λx. |⟦y ≤ x⟧| = |⟦y > x⟧|}}(R) ≠ ∅  ⟺  |R| even\n");
    println!("| n  | witness x | even? |");
    println!("|----|-----------|-------|");
    for n in 0u64..=12 {
        let r = Bag::from_values((0..n as i64).map(|i| Value::tuple([Value::int(i)])));
        let db = Database::new().with("R", r);
        let witnesses = eval_bag(&parity_even_ordered(Expr::var("R")), &db)?;
        let even = !witnesses.is_empty();
        // The witness is the median element: #(≤x) = #(>x) = n/2.
        let witness = witnesses
            .elements()
            .next()
            .map_or_else(|| "—".into(), |v| v.to_string());
        println!("| {n:>2} | {witness:>9} | {even:>5} |");
        assert_eq!(even, n > 0 && n % 2 == 0);
    }

    // The same query runs on any ordered atoms, not just integers.
    let names = Bag::from_values(
        ["ada", "bo", "cy", "dee"]
            .iter()
            .map(|s| Value::tuple([Value::sym(s)])),
    );
    let db = Database::new().with("R", names);
    let even = !eval_bag(&parity_even_ordered(Expr::var("R")), &db)?.is_empty();
    println!("\n4 names sorted lexicographically → even: {even}");

    // Static analysis confirms the fragment: BALG¹ + order.
    let schema = Schema::new().with("R", Type::relation(1));
    let analysis = check(&parity_even_ordered(Expr::var("R")), &schema)?;
    println!(
        "fragment: BALG level {}, uses order: {} (core BALG¹ alone cannot express parity)",
        analysis.balg_level(),
        analysis.uses_order
    );
    Ok(())
}
