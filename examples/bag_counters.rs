//! Bags are counters (Section 2's [GM95] remark): run a Minsky counter
//! machine whose registers are bags — increment is `∪⁺⟦a⟧`, decrement is
//! `−⟦a⟧`, and the zero test is bag emptiness.
//!
//! ```sh
//! cargo run --example bag_counters
//! ```

use balg::core::eval::Limits;
use balg::machine::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("addition machine: r0 += r1 by transfer loop\n");
    let machine = addition_machine();
    for (a, b) in [(3u64, 4u64), (0, 7), (9, 0)] {
        let direct = machine.run(&[a, b], 500)?;
        let compiled = compile_counter(&machine, &[a, b]);
        let via_bags = compiled.run(Limits::default())?;
        println!(
            "  {a} + {b}: direct → r = {:?} in {} steps; via bags → r = {:?} in {} steps",
            direct.registers, direct.steps, via_bags.registers, via_bags.steps
        );
        assert_eq!(direct.registers, via_bags.registers);
    }

    println!("\ndoubling machine: r0 := 2·r0 via a temporary register\n");
    let doubler = doubling_machine();
    for n in [0u64, 1, 5] {
        let compiled = compile_counter(&doubler, &[n]);
        let via_bags = compiled.run(Limits::default())?;
        println!(
            "  2·{n} = {} ({} steps)",
            via_bags.registers[0], via_bags.steps
        );
        assert_eq!(via_bags.registers[0], 2 * n);
    }

    println!("\nthe compiled step expression is plain BALG + IFP:");
    let compiled = compile_counter(&machine, &[1, 1]);
    let rendered = compiled.program.to_string();
    println!("  {}…", &rendered[..rendered.len().min(140)]);
    println!("\nregisters never leave the bag world: a counter at value n");
    println!("IS the bag with n occurrences — the paper's integer encoding.");
    Ok(())
}
